// Copyright (c) NetKernel reproduction authors.
// NetKernel Queue Element (NQE): the fixed 32-byte intermediate representation
// of socket semantics exchanged between GuestLib and ServiceLib (paper §4.2,
// Figure 3).
//
// Byte budget (32 bytes total, Figure 3):
//   8 B op_data | 8 B data pointer | 4 B VM socket ID | 4 B size |
//   1 B op type | 1 B VM ID | 1 B queue set ID | 5 B reserved
//
// `vm_sock` is the handle of the sock structure in the user VM (the paper
// stores a pointer; we store a 32-bit handle). `op_data` carries per-op
// payload such as the ip:port for bind/connect, result codes, or the NSM-side
// connection ID. `data_ptr` is an offset into the shared hugepage region and
// `size` the length of the data it points at.
//
// ---- nklint annotation grammar (this header is the source of truth) ----
// Every NqeOp enumerator carries a machine-readable contract annotation,
// either trailing the enumerator or on the comment line directly above it:
//
//   // nklint: dir=<guest->nsm|nsm->guest|control|none> [ring=<completion|receive>]
//   //         [guard=<send|job>] [carries-chunk] [completion=kOp] [reclaim=kOp]
//
//   dir            which way the op travels across the shared-memory device.
//   ring           the guest-facing ring that delivers it (nsm->guest only):
//                  `completion` retires a request, `receive` carries inbound
//                  payload/events.
//   guard          (guest->nsm only, required) the guest-writable ring that
//                  admits the op past nkguard: `send` or `job`. The
//                  guard-coverage check cross-references every annotated op
//                  against the admission tables in src/guard/ so the
//                  validator cannot silently fall out of sync with the
//                  contract.
//   carries-chunk  data_ptr references a hugepage chunk whose *ownership*
//                  crosses with the NQE (send payloads, zc receives).
//   completion     the nsm->guest op that answers this request; must exist
//                  and ride the completion ring.
//   reclaim        for carries-chunk requests: the completion CoreEngine
//                  synthesizes (with kNqeFlagChunkUnconsumed) when the op
//                  dies inside the switch, so the chunk and send credit
//                  always find their way home. Must appear in
//                  CoreEngineShard::BuildErrorCompletion.
//
// tools/nklint (ctest `nklint`, tier-1) cross-checks these annotations
// against the actual routing, dispatch, reap, and unwinding code, so a new
// op cannot land half-wired. Exceptions are suppressed — visibly and
// greppably — with `// nklint-allow(<check>): reason` on or directly above
// the flagged line. See README "Static analysis".

#ifndef SRC_SHM_NQE_H_
#define SRC_SHM_NQE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace netkernel::shm {

enum class NqeOp : uint8_t {
  // nklint: dir=none
  kInvalid = 0,
  // VM -> NSM socket operations (job queue unless noted).
  // nklint: dir=guest->nsm guard=job completion=kOpResult
  kSocket = 1,
  // nklint: dir=guest->nsm guard=job completion=kOpResult
  kBind = 2,
  // nklint: dir=guest->nsm guard=job completion=kOpResult
  kListen = 3,
  // nklint: dir=guest->nsm guard=job completion=kConnectResult
  kConnect = 4,
  // nklint: dir=guest->nsm guard=job completion=kAcceptedConn
  kAccept = 5,  // pipelined: NSM replies as connections arrive
  // nklint: dir=guest->nsm guard=job completion=kOpResult
  kSetsockopt = 6,
  // nklint: dir=guest->nsm guard=job completion=kOpResult
  kGetsockopt = 7,
  // nklint: dir=guest->nsm guard=job completion=kOpResult
  kIoctl = 8,
  // nklint: dir=guest->nsm guard=job completion=kOpResult
  kShutdown = 9,
  // nklint: dir=guest->nsm guard=job
  kClose = 10,  // fire-and-forget: no guest thread waits on a close
  // nklint: dir=guest->nsm guard=send carries-chunk completion=kSendResult reclaim=kSendResult
  kSend = 11,  // send queue: data_ptr/size reference hugepage payload
  // Datagram (SOCK_DGRAM) operations: connectionless, so CoreEngine routes
  // them by socket key alone — no connection-table completion handshake.
  // nklint: dir=guest->nsm guard=job completion=kOpResult
  kSocketUdp = 12,  // job: create a UDP socket in the NSM
  // nklint: dir=guest->nsm guard=job completion=kOpResult
  kBindUdp = 13,    // job: bind ip:port carried in op_data
  // nklint: dir=guest->nsm guard=send carries-chunk completion=kSendToResult reclaim=kSendToResult
  kSendTo = 14,     // send queue: op_data = packed destination, payload in hugepages
  // nklint: dir=guest->nsm guard=job
  kRecvFrom = 15,   // job: datagram receive credit return (op_data = bytes freed)
  // Zero-copy send (registered-buffer datapath): the guest filled the chunk
  // in place and transfers ownership. The NSM's stack transmits (and
  // retransmits) directly from the chunk and frees it into the shared pool
  // only once the byte range is ACKed, answering with kSendZcComplete.
  // nklint: dir=guest->nsm guard=send carries-chunk completion=kSendZcComplete reclaim=kSendZcComplete
  kSendZc = 16,  // send queue: data_ptr/size reference the loaned chunk
  // Zero-copy datagram send: like kSendTo (op_data = packed destination) but
  // the guest filled the chunk in place and transfers ownership; the NSM's
  // UDP stack builds the wire datagram straight from the chunk and frees it
  // once the skb is committed, answering with kSendToResult (orig kSendToZc).
  // nklint: dir=guest->nsm guard=send carries-chunk completion=kSendToResult reclaim=kSendToResult
  kSendToZc = 17,  // send queue: data_ptr/size reference the loaned chunk
  // NSM -> VM results and events.
  // nklint: dir=nsm->guest ring=completion
  kOpResult = 32,       // completion queue: result of a control op
  // nklint: dir=nsm->guest ring=completion
  kConnectResult = 33,  // completion queue
  // nklint: dir=nsm->guest ring=completion
  kAcceptedConn = 34,   // completion queue: new connection, op_data = NSM conn id
  // nklint: dir=nsm->guest ring=completion
  kSendResult = 35,     // completion queue: buffer usage can be decreased
  // nklint: dir=nsm->guest ring=receive carries-chunk
  kRecvData = 36,       // receive queue: data_ptr/size reference received payload
  // nklint: dir=nsm->guest ring=receive
  kFinReceived = 37,    // receive queue: peer closed
  // nklint: dir=nsm->guest ring=completion
  kSendToResult = 38,   // completion queue: datagram sent, send credit returned
  // nklint: dir=nsm->guest ring=receive carries-chunk
  kDgramRecv = 39,      // receive queue: datagram payload; op_data = packed source
  // Zero-copy send completion: the kSendZc byte range was ACKed (or failed).
  // op_data = send-credit bytes to return; size = status (0 or negative
  // errno). The chunk was freed into the shared pool by the NSM — unless
  // reserved[1] carries kNqeFlagChunkUnconsumed (a CoreEngine-synthesized
  // error), in which case the guest still owns it and must free it.
  // nklint: dir=nsm->guest ring=completion
  kSendZcComplete = 40,  // completion queue
  // Zero-copy datagram receive: identical shape to kDgramRecv (op_data =
  // packed source, data_ptr/size = payload chunk) but the chunk was detached
  // from the UDP stack's receive queue — it never crossed a rcvbuf->hugepage
  // copy. Guests treat both alike; the distinct op keeps the fallback copy
  // path observable end to end.
  // nklint: dir=nsm->guest ring=receive carries-chunk
  kDgramRecvZc = 41,  // receive queue
  // Failover notification: the VM's NSM died (or was drained for a rolling
  // upgrade) and the VM was re-homed onto the standby NSM. vm_sock is 0 — the
  // event is per-VM, not per-socket. op_data carries the new NSM id. GuestLib
  // reacts by re-issuing socket/bind for every datagram socket so the standby
  // NSM rebuilds their state under the same guest handles; stream sockets were
  // already errored with FINs by the switch (see `reconnects_required`).
  // nklint: dir=nsm->guest ring=completion
  kNsmRehomed = 42,  // completion queue
  // Control plane (CoreEngine registration channel, §5). These reserve the
  // paper's wire numbers; the reproduction's control plane rides the typed
  // CeMessage channel (CoreEngine::HandleControlMessage) instead of NQEs, so
  // nothing routes them today.
  // nklint-allow(op-routing): control plane rides the CeMessage channel; these reserve §5 wire numbers only.
  // nklint: dir=control
  kRegisterDevice = 64,
  // nklint-allow(op-routing): control plane rides the CeMessage channel; these reserve §5 wire numbers only.
  // nklint: dir=control
  kDeregisterDevice = 65,
  // NSM liveness heartbeat (§5 wire number). The reproduction's heartbeats
  // ride the CeMessage channel (CeOp::kHeartbeat -> RecordNsmHeartbeat); the
  // health-miss flight events stamp this op byte so a post-mortem tail names
  // the protocol verb.
  // nklint: dir=control
  kHeartbeat = 66,
};

// reserved[1] flag on NSM->VM completions: the operation failed inside the
// switch before any consumer saw it, so the payload chunk referenced by
// data_ptr was never consumed — GuestLib must free it and reclaim the send
// credit. Set by CoreEngine-synthesized error completions (never by a real
// NSM, whose completions always carry data_ptr == 0).
constexpr uint8_t kNqeFlagChunkUnconsumed = 1;

// op_data packing helpers for address-carrying ops (ip in high 32 bits,
// port in low 16).
constexpr uint64_t PackAddr(uint32_t ip, uint16_t port) {
  return (static_cast<uint64_t>(ip) << 32) | port;
}
constexpr uint32_t AddrIp(uint64_t op_data) { return static_cast<uint32_t>(op_data >> 32); }
constexpr uint16_t AddrPort(uint64_t op_data) { return static_cast<uint16_t>(op_data & 0xffff); }

// Fields are ordered wide-to-narrow so every member sits at its natural
// alignment and the struct is exactly 32 bytes without packing pragmas —
// packed misaligned fields are UB to bind references to (and slower to
// load on most ISAs). The byte budget matches Figure 3 exactly.
struct Nqe {
  uint64_t op_data = 0;   // operation payload / result
  uint64_t data_ptr = 0;  // offset into the shared hugepage region
  uint32_t vm_sock = 0;   // socket handle in the user VM
  uint32_t size = 0;      // size of the data pointed at
  uint8_t op = 0;         // NqeOp
  uint8_t vm_id = 0;      // originating VM (or NSM for responses)
  uint8_t queue_set = 0;  // queue set the NQE was enqueued on
  uint8_t reserved[5] = {0, 0, 0, 0, 0};

  NqeOp Op() const { return static_cast<NqeOp>(op); }
  void SetOp(NqeOp o) { op = static_cast<uint8_t>(o); }
};

static_assert(sizeof(Nqe) == 32, "NQE must be exactly 32 bytes (paper Figure 3)");

// Trace id carried in reserved[3..4] (little-endian 16-bit). The other
// reserved bytes are spoken for: reserved[0] echoes the original op on
// completions, reserved[1] carries the reuseport flag / kNqeFlagChunkUnconsumed,
// reserved[2] carries the NSM-side processing queue set. Id 0 means "not
// traced" — MakeNqe zero-initializes reserved, so every NQE is untraced until
// the sampling tracer stamps it at guest-enqueue (nkobs lifecycle tracing).
constexpr uint16_t NqeTraceId(const Nqe& n) {
  return static_cast<uint16_t>(n.reserved[3] | (n.reserved[4] << 8));
}
inline void SetNqeTraceId(Nqe* n, uint16_t id) {
  n->reserved[3] = static_cast<uint8_t>(id & 0xff);
  n->reserved[4] = static_cast<uint8_t>(id >> 8);
}

inline Nqe MakeNqe(NqeOp op, uint8_t vm_id, uint8_t queue_set, uint32_t vm_sock,
                   uint64_t op_data = 0, uint64_t data_ptr = 0, uint32_t size = 0) {
  Nqe n;
  n.SetOp(op);
  n.vm_id = vm_id;
  n.queue_set = queue_set;
  n.vm_sock = vm_sock;
  n.op_data = op_data;
  n.data_ptr = data_ptr;
  n.size = size;
  return n;
}

std::string NqeOpName(NqeOp op);

}  // namespace netkernel::shm

#endif  // SRC_SHM_NQE_H_
