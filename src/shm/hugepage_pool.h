// Copyright (c) NetKernel reproduction authors.
// Shared hugepage region for application payloads (paper §4.5).
//
// One pool is shared per <VM, NSM> tuple: GuestLib copies send() payloads in,
// ServiceLib copies received payloads in, and NQEs reference chunks by offset
// (the NQE's 8-byte "data pointer"). The pool is a size-class slab allocator
// over one contiguous region (the paper uses 128 x 2 MB hugepages; the region
// size is configurable here). Exhaustion is reported to the caller, which
// models the finite socket-buffer backpressure of the real system.

#ifndef SRC_SHM_HUGEPAGE_POOL_H_
#define SRC_SHM_HUGEPAGE_POOL_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace netkernel::shm {

class HugepagePool {
 public:
  static constexpr uint64_t kInvalidOffset = ~0ULL;
  static constexpr uint64_t kDefaultRegionBytes = 64 * kMiB;
  // Largest allocatable chunk (one TSO-sized unit).
  static constexpr uint32_t kMaxChunk = 64 * 1024;

  explicit HugepagePool(uint64_t region_bytes = kDefaultRegionBytes);

  // Allocates a chunk of at least `size` bytes (size <= kMaxChunk).
  // Returns the data offset, or kInvalidOffset when the region is exhausted.
  uint64_t Alloc(uint32_t size);
  // Returns a chunk. Freeing an offset that is not currently allocated (a
  // double free, or a garbage offset) is a hard invariant violation — the
  // chunk header carries an allocation state byte so it aborts loudly here
  // instead of silently corrupting the free list.
  void Free(uint64_t offset);
  // True when `offset` is the data offset of a currently-allocated chunk.
  bool IsAllocated(uint64_t offset) const;
  // Usable capacity of an allocated chunk (its size class).
  uint32_t ChunkCapacity(uint64_t offset) const;
  // Allocation generation of the chunk at `offset`: bumped every time the
  // chunk is handed out by Alloc(), wrapping at 16 bits. Together with the
  // offset this names one *incarnation* of a chunk, which is what nkguard
  // needs to tell a replayed NQE (same offset, stale incarnation already
  // consumed) from a legitimate reuse after free+realloc. `offset` must lie
  // inside the region but need not be currently allocated.
  uint16_t Generation(uint64_t offset) const;

  uint8_t* Data(uint64_t offset);
  const uint8_t* Data(uint64_t offset) const;

  uint64_t region_bytes() const { return region_.size(); }
  uint64_t bytes_in_use() const { return bytes_in_use_; }
  uint64_t chunks_in_use() const { return allocs_ - frees_; }
  uint64_t allocs() const { return allocs_; }
  uint64_t frees() const { return frees_; }
  uint64_t alloc_failures() const { return alloc_failures_; }

  // Size class for a request (rounded up to the next power of two >= 64).
  static uint32_t ClassSize(uint32_t size);

 private:
  static constexpr uint32_t kMinChunk = 64;
  // Header layout: [int class_idx][u8 state][u16 generation][u8 unused].
  static constexpr uint64_t kHeader = 8;

  int ClassIndex(uint32_t size) const;

  std::vector<uint8_t> region_;
  uint64_t bump_ = 0;  // carve point for fresh blocks
  std::vector<std::vector<uint64_t>> free_lists_;
  uint64_t bytes_in_use_ = 0;
  uint64_t allocs_ = 0;
  uint64_t frees_ = 0;
  uint64_t alloc_failures_ = 0;
};

}  // namespace netkernel::shm

#endif  // SRC_SHM_HUGEPAGE_POOL_H_
