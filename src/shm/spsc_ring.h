// Copyright (c) NetKernel reproduction authors.
// Lock-free single-producer single-consumer ring buffer (paper §3 "Scalable
// Lockless Queues"). Each queue is shared between exactly one producer and one
// consumer (a VM/NSM NK device on one side and CoreEngine on the other), so no
// locks or CAS loops are needed — just acquire/release on head/tail.
//
// This is real concurrent code: the Fig 11/12 microbenchmarks drive it from
// actual threads. The discrete-event simulation reuses it single-threaded.
//
// Ordering contract (guarded by the CI ThreadSanitizer job, which runs the
// two-thread stress in shm_test and the obs soak under -fsanitize=thread):
//   * head_ is written only by the producer, tail_ only by the consumer.
//   * Every slot write happens-before the head_ release-store that publishes
//     it; the consumer's acquire-load of head_ therefore makes the slot
//     contents visible before they are read. Symmetrically, the consumer's
//     tail_ release-store publishes that a slot was fully read out, and the
//     producer's acquire-load of tail_ makes it safe to overwrite.
//   * Each side reads its own index relaxed (no other thread writes it), and
//     the other side's index with acquire. Weakening any acquire/release
//     pair below to relaxed is a data race on slots_ — TSan will flag it.

#ifndef SRC_SHM_SPSC_RING_H_
#define SRC_SHM_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace netkernel::shm {

template <typename T>
class SpscRing {
 public:
  // capacity must be a power of two; the ring holds capacity-1 elements.
  explicit SpscRing(size_t capacity) : mask_(capacity - 1), slots_(capacity) {
    NK_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size() - 1; }

  // Producer side -----------------------------------------------------------

  bool TryEnqueue(const T& item) {
    const size_t head = head_.load(std::memory_order_relaxed);  // own index
    const size_t next = (head + 1) & mask_;
    // Acquire pairs with the consumer's tail_ release in TryDequeue: seeing
    // the new tail guarantees the consumer is done reading slots_[head].
    if (next == tail_.load(std::memory_order_acquire)) return false;  // full
    slots_[head] = item;
    // Release publishes the slot write above to the consumer's acquire load.
    head_.store(next, std::memory_order_release);
    return true;
  }

  // Enqueues up to `n` items from `items`; returns how many were enqueued.
  // Same acquire(tail_)/release(head_) pairing as TryEnqueue, amortized over
  // the batch: one release-store publishes every slot written in the loop.
  size_t EnqueueBatch(const T* items, size_t n) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    size_t free = (tail - head - 1) & mask_;
    size_t count = n < free ? n : free;
    for (size_t i = 0; i < count; ++i) {
      slots_[(head + i) & mask_] = items[i];
    }
    head_.store((head + count) & mask_, std::memory_order_release);
    return count;
  }

  // Consumer side -----------------------------------------------------------

  bool TryDequeue(T* out) {
    const size_t tail = tail_.load(std::memory_order_relaxed);  // own index
    // Acquire pairs with the producer's head_ release: the slot contents
    // written before that release are visible once the new head is seen.
    if (tail == head_.load(std::memory_order_acquire)) return false;  // empty
    *out = slots_[tail];
    // Release publishes "slot consumed" to the producer's acquire load, so
    // it may safely overwrite slots_[tail].
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  // Dequeues up to `max` items into `out`; returns how many were dequeued.
  // Same acquire(head_)/release(tail_) pairing as TryDequeue, amortized over
  // the batch: one release-store returns every drained slot to the producer.
  size_t DequeueBatch(T* out, size_t max) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    size_t avail = (head - tail) & mask_;
    size_t count = max < avail ? max : avail;
    for (size_t i = 0; i < count; ++i) {
      out[i] = slots_[(tail + i) & mask_];
    }
    tail_.store((tail + count) & mask_, std::memory_order_release);
    return count;
  }

  // Peeks at the next item without consuming it (consumer side only).
  bool Peek(T* out) const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    *out = slots_[tail];
    return true;
  }

  // Observers (approximate under concurrency; exact when single-threaded).

  bool Empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }
  size_t Size() const {
    return (head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire)) & mask_;
  }

 private:
  static constexpr size_t kCacheLine = 64;

  alignas(kCacheLine) std::atomic<size_t> head_{0};  // producer writes
  alignas(kCacheLine) std::atomic<size_t> tail_{0};  // consumer writes
  alignas(kCacheLine) const size_t mask_;
  std::vector<T> slots_;
};

}  // namespace netkernel::shm

#endif  // SRC_SHM_SPSC_RING_H_
