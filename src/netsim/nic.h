// Copyright (c) NetKernel reproduction authors.
// Virtual / physical NIC. TX hands packets to the attached switch (the NIC's
// own serialization is modelled by the egress link). RX queues arriving
// packets and notifies the attached stack on the empty -> non-empty edge, so
// the stack can model interrupt coalescing by draining batches.

#ifndef SRC_NETSIM_NIC_H_
#define SRC_NETSIM_NIC_H_

#include <deque>
#include <functional>
#include <map>
#include <cstdio>
#include <string>
#include <utility>

#include "src/common/units.h"
#include "src/netsim/packet.h"
#include "src/netsim/switch.h"
#include "src/sim/event_loop.h"

namespace netkernel::netsim {

class Nic {
 public:
  Nic(std::string name, IpAddr ip) : name_(std::move(name)), ip_(ip) {}
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  const std::string& name() const { return name_; }
  IpAddr ip() const { return ip_; }

  void AttachSwitch(Switch* sw) { switch_ = sw; }

  // Enables per-source deficit-round-robin egress scheduling at `rate`.
  // Used by the FairShare NSM (§6.2): the NSM owns the vNIC, so it can
  // schedule the aggregates of the VMs it serves directly — equal shares of
  // the port regardless of each VM's flow count. Packets are classified by
  // their (pre-stamped) source address; unstamped packets use the NIC's own.
  void EnableFairEgress(sim::EventLoop* loop, BitRate rate) {
    loop_ = loop;
    egress_rate_ = rate;
  }

  // Stack-facing TX: forward out through the switch fabric.
  void Transmit(Packet pkt) {
    if (pkt.src == 0) pkt.src = ip_;
    ++tx_packets_;
    tx_bytes_ += pkt.wire_bytes;
    if (egress_rate_ > 0) {
      // Per-source scheduler queue: ECN-mark when it grows (so DCTCP-style
      // VM windows stabilize against the scheduler, not against drops), and
      // drop-tail only beyond the hard cap.
      uint64_t& backlog = drr_bytes_[pkt.src];
      if (backlog + pkt.wire_bytes > kDrrQueueCap) {
        ++egress_drops_;
        return;
      }
      if (pkt.ecn_capable && backlog >= kDrrEcnThreshold) pkt.ce_marked = true;
      backlog += pkt.wire_bytes;
      drr_queues_[pkt.src].push_back(std::move(pkt));
      ServeEgress();
      return;
    }
    if (switch_ != nullptr) switch_->Forward(std::move(pkt));
  }

  // Link-facing RX: called by the ingress link's sink.
  void Receive(Packet pkt) {
    ++rx_packets_;
    rx_bytes_ += pkt.wire_bytes;
    bool was_empty = rx_queue_.empty();
    rx_queue_.push_back(std::move(pkt));
    if (was_empty && rx_notify_) rx_notify_();
  }

  // Stack-facing RX drain: pops up to `max` packets. Returns count.
  size_t DrainRx(Packet* out, size_t max) {
    size_t n = 0;
    while (n < max && !rx_queue_.empty()) {
      out[n++] = std::move(rx_queue_.front());
      rx_queue_.pop_front();
    }
    return n;
  }

  size_t RxPending() const { return rx_queue_.size(); }

  // Fires when the RX queue transitions empty -> non-empty (the "interrupt").
  void SetRxNotify(std::function<void()> cb) { rx_notify_ = std::move(cb); }

  uint64_t tx_packets() const { return tx_packets_; }
  size_t EgressBacklogPackets() const {
    size_t n = 0;
    for (const auto& [src, q] : drr_queues_) n += q.size();
    return n;
  }
  uint64_t EgressBacklogBytesOf(IpAddr src) const {
    auto it = drr_bytes_.find(src);
    return it == drr_bytes_.end() ? 0 : it->second;
  }
  uint64_t egress_drops() const { return egress_drops_; }
  // Debug: per-source queue composition.
  std::string DumpEgressQueues() const {
    std::string out;
    char buf[128];
    for (const auto& [src, q] : drr_queues_) {
      uint64_t bytes = 0;
      uint32_t mx = 0;
      for (const auto& p : q) {
        bytes += p.wire_bytes;
        mx = p.wire_bytes > mx ? p.wire_bytes : mx;
      }
      auto dit = drr_deficit_.find(src);
      std::snprintf(buf, sizeof(buf), "[src=%u n=%zu bytes=%llu max=%u def=%lld] ", src,
                    q.size(), (unsigned long long)bytes, mx,
                    dit == drr_deficit_.end() ? -1LL : (long long)dit->second);
      out += buf;
    }
    return out;
  }
  uint64_t EgressServedBytesOf(IpAddr src) const {
    auto it = drr_served_.find(src);
    return it == drr_served_.end() ? 0 : it->second;
  }

  uint64_t rx_packets() const { return rx_packets_; }
  uint64_t tx_bytes() const { return tx_bytes_; }
  uint64_t rx_bytes() const { return rx_bytes_; }

 private:
  // Deficit round robin over per-source queues, paced at the egress rate.
  void ServeEgress() {
    if (egress_busy_ || switch_ == nullptr) return;
    // Pick the next non-empty source with deficit, round-robin.
    for (auto it = drr_queues_.begin(); it != drr_queues_.end();) {
      if (it->second.empty()) {
        drr_deficit_.erase(it->first);
        it = drr_queues_.erase(it);
      } else {
        ++it;
      }
    }
    if (drr_queues_.empty()) return;
    // Classic byte-fair DRR: a source keeps transmitting while its deficit
    // covers its head packet; only then does the round move on (rotating
    // after every packet would be packet-fair, which starves sources with
    // small packets against TSO-chunk senders).
    auto it = drr_queues_.find(drr_cursor_);
    if (it == drr_queues_.end() ||
        drr_deficit_[it->first] < static_cast<int64_t>(it->second.front().wire_bytes)) {
      // Rotate (work-conserving: keep topping up until someone can send; a
      // head packet is at most one TSO chunk < one quantum).
      it = drr_queues_.upper_bound(drr_cursor_);
      for (;;) {
        if (it == drr_queues_.end()) it = drr_queues_.begin();
        int64_t& deficit = drr_deficit_[it->first];
        if (deficit < static_cast<int64_t>(it->second.front().wire_bytes)) {
          deficit += kDrrQuantum;
          ++it;
          continue;
        }
        break;
      }
    }
    drr_cursor_ = it->first;
    int64_t& deficit = drr_deficit_[it->first];
    Packet pkt = std::move(it->second.front());
    it->second.pop_front();
    drr_bytes_[it->first] -= pkt.wire_bytes;
    drr_served_[it->first] += pkt.wire_bytes;
    deficit -= static_cast<int64_t>(pkt.wire_bytes);
    if (it->second.empty()) deficit = 0;  // no deficit hoarding while idle
    SimTime tx = TransmitTime(pkt.wire_bytes, egress_rate_);
    egress_busy_ = true;
    switch_->Forward(std::move(pkt));
    loop_->ScheduleAfter(tx, [this] {
      egress_busy_ = false;
      ServeEgress();
    });
  }

  static constexpr int64_t kDrrQuantum = 128 * 1024;
  static constexpr uint64_t kDrrQueueCap = 2 * 1024 * 1024;
  static constexpr uint64_t kDrrEcnThreshold = 512 * 1024;

  std::string name_;
  IpAddr ip_;
  Switch* switch_ = nullptr;
  sim::EventLoop* loop_ = nullptr;
  BitRate egress_rate_ = 0;
  std::map<IpAddr, std::deque<Packet>> drr_queues_;
  std::map<IpAddr, int64_t> drr_deficit_;
  std::map<IpAddr, uint64_t> drr_bytes_;
  std::map<IpAddr, uint64_t> drr_served_;
  uint64_t egress_drops_ = 0;
  IpAddr drr_cursor_ = 0;
  bool egress_busy_ = false;
  std::deque<Packet> rx_queue_;
  std::function<void()> rx_notify_;
  uint64_t tx_packets_ = 0;
  uint64_t rx_packets_ = 0;
  uint64_t tx_bytes_ = 0;
  uint64_t rx_bytes_ = 0;
};

}  // namespace netkernel::netsim

#endif  // SRC_NETSIM_NIC_H_
