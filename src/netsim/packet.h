// Copyright (c) NetKernel reproduction authors.
// Packets carried by the simulated fabric. The fabric is payload-agnostic:
// protocol modules (tcpstack) attach their segment as a shared, immutable
// payload object.

#ifndef SRC_NETSIM_PACKET_H_
#define SRC_NETSIM_PACKET_H_

#include <cstdint>
#include <memory>
#include <string>

namespace netkernel::netsim {

using IpAddr = uint32_t;

inline std::string IpToString(IpAddr ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

// Builds 10.x.y.z style addresses for tests and examples.
constexpr IpAddr MakeIp(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<IpAddr>(a) << 24) | (static_cast<IpAddr>(b) << 16) |
         (static_cast<IpAddr>(c) << 8) | d;
}

enum class Protocol : uint8_t { kRaw = 0, kTcp = 6, kUdp = 17 };

struct Packet {
  IpAddr src = 0;
  IpAddr dst = 0;
  uint32_t wire_bytes = 0;  // total on-the-wire size incl. headers
  Protocol protocol = Protocol::kRaw;
  bool ecn_capable = false;
  bool ce_marked = false;          // set by a congested queue (DCTCP)
  uint64_t flow_hash = 0;          // used for multi-queue spreading
  std::shared_ptr<const void> payload;  // protocol-defined (e.g. tcp::Segment)
};

}  // namespace netkernel::netsim

#endif  // SRC_NETSIM_PACKET_H_
