// Copyright (c) NetKernel reproduction authors.
// Unidirectional link with finite bandwidth, propagation delay, and a
// drop-tail byte queue with an optional ECN marking threshold. Two links make
// a full-duplex cable. The congestion-control experiments (Fig 9, Fig 21)
// depend on these queues behaving like real switch ports.

#ifndef SRC_NETSIM_LINK_H_
#define SRC_NETSIM_LINK_H_

#include <functional>
#include <string>
#include <utility>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/netsim/packet.h"
#include "src/sim/event_loop.h"

namespace netkernel::netsim {

class Link {
 public:
  struct Config {
    BitRate bandwidth = 100 * kGbps;
    SimTime propagation_delay = 2 * kMicrosecond;
    uint64_t queue_limit_bytes = 16 * kMiB;  // drop-tail beyond this backlog
    uint64_t ecn_threshold_bytes = 0;        // 0 = ECN disabled
    // RED-style early drop: above this fraction of the queue limit, packets
    // are dropped with a probability ramping quadratically to max_early_drop.
    // Real switches drop individual MTU packets; our TSO-chunk packets make
    // pure drop-tail too coarse (whole 64KB bursts vanish), which causes
    // flow-capture artifacts. Randomized early drop restores per-flow
    // desynchronization. Set early_drop_fraction >= 1.0 to disable.
    double early_drop_fraction = 0.8;
    double max_early_drop = 0.25;
  };

  using DeliverFn = std::function<void(Packet)>;

  Link(sim::EventLoop* loop, std::string name, Config config)
      : loop_(loop), name_(std::move(name)), config_(config) {}
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void SetSink(DeliverFn sink) { sink_ = std::move(sink); }

  // Fault injection for tests: return true to drop the packet.
  void SetDropFn(std::function<bool(const Packet&)> fn) { drop_fn_ = std::move(fn); }
  const Config& config() const { return config_; }
  const std::string& name() const { return name_; }

  // Enqueues a packet for transmission. Drops (and counts) when the backlog
  // exceeds the queue limit. Marks CE when the backlog exceeds the ECN
  // threshold and the packet is ECN-capable.
  void Enqueue(Packet pkt) {
    const SimTime now = loop_->Now();
    if (drop_fn_ && drop_fn_(pkt)) {
      ++drops_;
      dropped_bytes_ += pkt.wire_bytes;
      return;
    }
    const SimTime backlog = busy_until_ > now ? busy_until_ - now : 0;
    const uint64_t backlog_bytes =
        static_cast<uint64_t>(static_cast<double>(backlog) / kSecond * config_.bandwidth / 8.0);
    if (backlog_bytes + pkt.wire_bytes > config_.queue_limit_bytes) {
      ++drops_;
      dropped_bytes_ += pkt.wire_bytes;
      return;
    }
    if (config_.ecn_threshold_bytes > 0 && pkt.ecn_capable &&
        backlog_bytes >= config_.ecn_threshold_bytes) {
      pkt.ce_marked = true;
      ++ce_marks_;
    } else if (config_.early_drop_fraction < 1.0) {
      double frac = static_cast<double>(backlog_bytes) /
                    static_cast<double>(config_.queue_limit_bytes);
      if (frac > config_.early_drop_fraction) {
        double x = (frac - config_.early_drop_fraction) / (1.0 - config_.early_drop_fraction);
        if (rng_.NextBool(x * x * config_.max_early_drop)) {
          ++drops_;
          dropped_bytes_ += pkt.wire_bytes;
          return;
        }
      }
    }
    const SimTime start = busy_until_ > now ? busy_until_ : now;
    const SimTime tx = TransmitTime(pkt.wire_bytes, config_.bandwidth);
    busy_until_ = start + tx;
    delivered_bytes_ += pkt.wire_bytes;
    ++delivered_packets_;
    const SimTime arrival = busy_until_ + config_.propagation_delay;
    loop_->Schedule(arrival, [this, p = std::move(pkt)]() mutable {
      if (sink_) sink_(std::move(p));
    });
  }

  uint64_t drops() const { return drops_; }
  uint64_t dropped_bytes() const { return dropped_bytes_; }
  uint64_t ce_marks() const { return ce_marks_; }
  uint64_t delivered_bytes() const { return delivered_bytes_; }
  uint64_t delivered_packets() const { return delivered_packets_; }

  // Current queueing backlog in bytes (excludes the packet on the wire).
  uint64_t BacklogBytes() const {
    const SimTime now = loop_->Now();
    const SimTime backlog = busy_until_ > now ? busy_until_ - now : 0;
    return static_cast<uint64_t>(static_cast<double>(backlog) / kSecond * config_.bandwidth / 8.0);
  }

 private:
  sim::EventLoop* loop_;
  std::string name_;
  Config config_;
  DeliverFn sink_;
  std::function<bool(const Packet&)> drop_fn_;
  Rng rng_{0xb10cab1e};
  SimTime busy_until_ = 0;
  uint64_t drops_ = 0;
  uint64_t dropped_bytes_ = 0;
  uint64_t ce_marks_ = 0;
  uint64_t delivered_bytes_ = 0;
  uint64_t delivered_packets_ = 0;
};

}  // namespace netkernel::netsim

#endif  // SRC_NETSIM_LINK_H_
