// Copyright (c) NetKernel reproduction authors.
// Output-queued switch: forwards packets to the egress link registered for
// the destination address. Used both as the datacenter fabric switch between
// hosts and as the per-host virtual switch between vNICs and the pNIC.

#ifndef SRC_NETSIM_SWITCH_H_
#define SRC_NETSIM_SWITCH_H_

#include <string>
#include <unordered_map>

#include "src/netsim/link.h"
#include "src/netsim/packet.h"

namespace netkernel::netsim {

class Switch {
 public:
  explicit Switch(std::string name) : name_(std::move(name)) {}
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;
  // Fabric owns derived shims (e.g. its uplink adapter) through Switch*.
  virtual ~Switch() = default;

  const std::string& name() const { return name_; }

  // Routes packets destined to `ip` out of `link`. Multiple addresses may map
  // to the same link (e.g. all remote hosts behind the uplink).
  void AddRoute(IpAddr ip, Link* link) { routes_[ip] = link; }

  // Default route for addresses with no specific entry (the "uplink").
  void SetDefaultRoute(Link* link) { default_route_ = link; }

  void Forward(Packet pkt) {
    auto it = routes_.find(pkt.dst);
    Link* out = it != routes_.end() ? it->second : default_route_;
    if (out == nullptr) {
      ++no_route_drops_;
      return;
    }
    out->Enqueue(std::move(pkt));
  }

  uint64_t no_route_drops() const { return no_route_drops_; }

 private:
  std::string name_;
  std::unordered_map<IpAddr, Link*> routes_;
  Link* default_route_ = nullptr;
  uint64_t no_route_drops_ = 0;
};

}  // namespace netkernel::netsim

#endif  // SRC_NETSIM_SWITCH_H_
