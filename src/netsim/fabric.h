// Copyright (c) NetKernel reproduction authors.
// Convenience assembly of a small datacenter fabric: N host-facing ports on
// one switch, each port a full-duplex pair of links to a NIC. All benchmark
// topologies (two hosts on 100G, fan-in onto a 10G bottleneck, ...) are built
// from this.

#ifndef SRC_NETSIM_FABRIC_H_
#define SRC_NETSIM_FABRIC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/netsim/link.h"
#include "src/netsim/nic.h"
#include "src/netsim/switch.h"
#include "src/sim/event_loop.h"

namespace netkernel::netsim {

struct HostPort {
  Nic* nic = nullptr;
  Link* up = nullptr;    // host -> switch
  Link* down = nullptr;  // switch -> host
};

class Fabric {
 public:
  explicit Fabric(sim::EventLoop* loop) : loop_(loop), switch_("fabric") {}

  // Adds a host port: creates a NIC with `ip` connected to the fabric switch
  // by a full-duplex link pair with the given per-direction config.
  HostPort AddHost(const std::string& name, IpAddr ip, Link::Config config) {
    auto nic = std::make_unique<Nic>(name, ip);
    auto up = std::make_unique<Link>(loop_, name + ".up", config);
    auto down = std::make_unique<Link>(loop_, name + ".down", config);
    // Host TX -> up link -> switch; switch -> down link -> host RX.
    Nic* nic_ptr = nic.get();
    Link* down_ptr = down.get();
    up->SetSink([this](Packet p) { switch_.Forward(std::move(p)); });
    down->SetSink([nic_ptr](Packet p) { nic_ptr->Receive(std::move(p)); });
    switch_.AddRoute(ip, down_ptr);

    // The NIC transmits onto its up link rather than straight into the
    // switch, so the host's own port speed is the first bottleneck.
    struct UplinkShim : public Switch {
      explicit UplinkShim(Link* l) : Switch("uplink-shim"), link(l) {}
      Link* link;
    };
    auto shim = std::make_unique<UplinkShim>(up.get());
    shim->SetDefaultRoute(up.get());
    nic->AttachSwitch(shim.get());

    Link* up_ptr = up.get();
    nics_.push_back(std::move(nic));
    links_.push_back(std::move(up));
    links_.push_back(std::move(down));
    shims_.push_back(std::move(shim));
    return HostPort{nic_ptr, up_ptr, down_ptr};
  }

  // Routes an additional address (e.g. a NetKernel VM's IP) to an existing
  // port (its NSM's down link).
  void AddRoute(IpAddr ip, Link* down_link) { switch_.AddRoute(ip, down_link); }

  Switch* fabric_switch() { return &switch_; }
  Link* link(size_t i) { return links_[i].get(); }
  size_t num_links() const { return links_.size(); }

  // Down link (switch -> host) for host index i, in AddHost order.
  Link* down_link(size_t host_index) { return links_[host_index * 2 + 1].get(); }
  Link* up_link(size_t host_index) { return links_[host_index * 2].get(); }

 private:
  sim::EventLoop* loop_;
  Switch switch_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Switch>> shims_;
};

}  // namespace netkernel::netsim

#endif  // SRC_NETSIM_FABRIC_H_
