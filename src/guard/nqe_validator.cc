// Copyright (c) NetKernel reproduction authors.

#include "src/guard/nqe_validator.h"

namespace netkernel::guard {

using shm::Nqe;
using shm::NqeOp;

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "OK";
    case Verdict::kBadOp: return "BAD_OP";
    case Verdict::kBadIdentity: return "BAD_IDENTITY";
    case Verdict::kBadChunk: return "BAD_CHUNK";
    case Verdict::kReplayedChunk: return "REPLAYED_CHUNK";
    case Verdict::kBadCredit: return "BAD_CREDIT";
  }
  return "UNKNOWN";
}

// ---- Admission tables (mirror of the guard= annotations in nqe.h) ------

bool IsSendRingOp(NqeOp op) {
  switch (op) {
    case NqeOp::kSend:
    case NqeOp::kSendZc:
    case NqeOp::kSendTo:
    case NqeOp::kSendToZc:
      return true;
    case NqeOp::kInvalid:
    case NqeOp::kSocket:
    case NqeOp::kBind:
    case NqeOp::kListen:
    case NqeOp::kConnect:
    case NqeOp::kAccept:
    case NqeOp::kSetsockopt:
    case NqeOp::kGetsockopt:
    case NqeOp::kIoctl:
    case NqeOp::kShutdown:
    case NqeOp::kClose:
    case NqeOp::kSocketUdp:
    case NqeOp::kBindUdp:
    case NqeOp::kRecvFrom:
    case NqeOp::kOpResult:
    case NqeOp::kConnectResult:
    case NqeOp::kAcceptedConn:
    case NqeOp::kSendResult:
    case NqeOp::kRecvData:
    case NqeOp::kFinReceived:
    case NqeOp::kSendToResult:
    case NqeOp::kDgramRecv:
    case NqeOp::kSendZcComplete:
    case NqeOp::kDgramRecvZc:
    case NqeOp::kNsmRehomed:
    case NqeOp::kRegisterDevice:
    case NqeOp::kDeregisterDevice:
    case NqeOp::kHeartbeat:
      return false;
  }
  return false;  // non-enumerator byte off a hostile ring
}

bool IsJobRingOp(NqeOp op) {
  switch (op) {
    case NqeOp::kSocket:
    case NqeOp::kBind:
    case NqeOp::kListen:
    case NqeOp::kConnect:
    case NqeOp::kAccept:
    case NqeOp::kSetsockopt:
    case NqeOp::kGetsockopt:
    case NqeOp::kIoctl:
    case NqeOp::kShutdown:
    case NqeOp::kClose:
    case NqeOp::kSocketUdp:
    case NqeOp::kBindUdp:
    case NqeOp::kRecvFrom:
      return true;
    case NqeOp::kInvalid:
    case NqeOp::kSend:
    case NqeOp::kSendZc:
    case NqeOp::kSendTo:
    case NqeOp::kSendToZc:
    case NqeOp::kOpResult:
    case NqeOp::kConnectResult:
    case NqeOp::kAcceptedConn:
    case NqeOp::kSendResult:
    case NqeOp::kRecvData:
    case NqeOp::kFinReceived:
    case NqeOp::kSendToResult:
    case NqeOp::kDgramRecv:
    case NqeOp::kSendZcComplete:
    case NqeOp::kDgramRecvZc:
    case NqeOp::kNsmRehomed:
    case NqeOp::kRegisterDevice:
    case NqeOp::kDeregisterDevice:
    case NqeOp::kHeartbeat:
      return false;
  }
  return false;  // non-enumerator byte off a hostile ring
}

bool IsGuestToNsmOp(NqeOp op) { return IsSendRingOp(op) || IsJobRingOp(op); }

bool IsNsmToGuestOp(NqeOp op) {
  switch (op) {
    case NqeOp::kOpResult:
    case NqeOp::kConnectResult:
    case NqeOp::kAcceptedConn:
    case NqeOp::kSendResult:
    case NqeOp::kRecvData:
    case NqeOp::kFinReceived:
    case NqeOp::kSendToResult:
    case NqeOp::kDgramRecv:
    case NqeOp::kSendZcComplete:
    case NqeOp::kDgramRecvZc:
    case NqeOp::kNsmRehomed:
      return true;
    case NqeOp::kInvalid:
    case NqeOp::kSocket:
    case NqeOp::kBind:
    case NqeOp::kListen:
    case NqeOp::kConnect:
    case NqeOp::kAccept:
    case NqeOp::kSetsockopt:
    case NqeOp::kGetsockopt:
    case NqeOp::kIoctl:
    case NqeOp::kShutdown:
    case NqeOp::kClose:
    case NqeOp::kSend:
    case NqeOp::kSocketUdp:
    case NqeOp::kBindUdp:
    case NqeOp::kSendTo:
    case NqeOp::kRecvFrom:
    case NqeOp::kSendZc:
    case NqeOp::kSendToZc:
    case NqeOp::kRegisterDevice:
    case NqeOp::kDeregisterDevice:
    case NqeOp::kHeartbeat:
      return false;
  }
  return false;  // non-enumerator byte off a hostile ring
}

bool CarriesGuestChunk(NqeOp op) { return IsSendRingOp(op); }

// ------------------------------------------------------------------------

NqeValidator::NqeValidator(const GuardConfig& config) : config_(config) {}

void NqeValidator::RegisterVmPool(uint8_t vm_id, const shm::HugepagePool* pool) {
  vms_[vm_id].pool = pool;
}

void NqeValidator::ForgetVmPool(uint8_t vm_id) {
  auto it = vms_.find(vm_id);
  if (it == vms_.end()) return;
  it->second.pool = nullptr;
  it->second.chunk_gen_seen.clear();
}

bool NqeValidator::ScrubGuestFlags(Nqe* nqe) {
  bool keep_r1 = nqe->Op() == NqeOp::kListen;  // reuseport flag is guest-legit
  bool scrubbed = nqe->reserved[0] != 0 || nqe->reserved[2] != 0 ||
                  (!keep_r1 && nqe->reserved[1] != 0);
  nqe->reserved[0] = 0;
  if (!keep_r1) nqe->reserved[1] = 0;
  nqe->reserved[2] = 0;
  if (scrubbed) ++stats_.flags_scrubbed;
  return scrubbed;
}

Verdict NqeValidator::CheckChunk(VmState* st, const Nqe& nqe) const {
  if (st == nullptr || st->pool == nullptr) return Verdict::kOk;  // no pool: nothing to check
  const shm::HugepagePool* pool = st->pool;
  if (!pool->IsAllocated(nqe.data_ptr)) return Verdict::kBadChunk;
  if (nqe.size > pool->ChunkCapacity(nqe.data_ptr)) return Verdict::kBadChunk;
  auto it = st->chunk_gen_seen.find(nqe.data_ptr);
  if (it != st->chunk_gen_seen.end() &&
      it->second == pool->Generation(nqe.data_ptr)) {
    return Verdict::kReplayedChunk;  // this incarnation was already submitted
  }
  return Verdict::kOk;
}

Verdict NqeValidator::ValidateGuestNqe(Nqe* nqe, bool from_send_ring,
                                       uint8_t dev_vm_id, uint8_t qset) {
  // Identity first: vm_id/queue_set are pinned to the device+ring the NQE
  // was physically consumed from. Correct a forgery in place so everything
  // downstream (completions, counters, quarantine) targets the offender.
  if (nqe->vm_id != dev_vm_id || nqe->queue_set != qset) {
    nqe->vm_id = dev_vm_id;
    nqe->queue_set = qset;
    return Verdict::kBadIdentity;
  }
  NqeOp op = nqe->Op();
  if (from_send_ring ? !IsSendRingOp(op) : !IsJobRingOp(op)) {
    return Verdict::kBadOp;
  }
  VmState* st = nullptr;
  auto vit = vms_.find(dev_vm_id);
  if (vit != vms_.end()) st = &vit->second;
  if (CarriesGuestChunk(op)) {
    Verdict v = CheckChunk(st, *nqe);
    if (v != Verdict::kOk) return v;
  }
  if (op == NqeOp::kRecvFrom && st != nullptr && st->pool != nullptr) {
    // Datagram receive-credit return: op_data bytes are handed back to the
    // NSM. Refuse credit for bytes that were never delivered. (Pool-less
    // raw-device harnesses have no delivery ledger — skip, like chunks.)
    if (nqe->op_data > st->dgram_outstanding) return Verdict::kBadCredit;
  }
  return Verdict::kOk;
}

void NqeValidator::CommitGuestNqe(uint8_t vm_id, const Nqe& nqe) {
  // Ledger updates live here, NOT in ValidateGuestNqe: an accepted NQE may
  // legitimately stay in its ring (token-bucket throttle, backpressure) and
  // be re-validated on a later polling round. Only the actual dequeue spends
  // the chunk incarnation and the datagram credit.
  ++stats_.validated;
  auto vit = vms_.find(vm_id);
  if (vit == vms_.end() || vit->second.pool == nullptr) return;
  VmState& st = vit->second;
  NqeOp op = nqe.Op();
  if (CarriesGuestChunk(op)) {
    st.chunk_gen_seen[nqe.data_ptr] = st.pool->Generation(nqe.data_ptr);
  }
  if (op == NqeOp::kRecvFrom) {
    st.dgram_outstanding =
        st.dgram_outstanding > nqe.op_data ? st.dgram_outstanding - nqe.op_data : 0;
  }
}

bool NqeValidator::ValidateNsmNqe(const Nqe& nqe) {
  if (IsNsmToGuestOp(nqe.Op())) return true;
  ++stats_.nsm_bad_op;
  return false;
}

void NqeValidator::OnDgramDelivered(uint8_t vm_id, uint64_t bytes) {
  auto it = vms_.find(vm_id);
  if (it == vms_.end() || it->second.pool == nullptr) return;
  it->second.dgram_outstanding += bytes;
}

bool NqeValidator::ChunkReclaimable(uint8_t vm_id, const Nqe& nqe) const {
  if (!CarriesGuestChunk(nqe.Op())) return false;
  auto it = vms_.find(vm_id);
  if (it == vms_.end() || it->second.pool == nullptr) return false;
  const VmState& st = it->second;
  if (!st.pool->IsAllocated(nqe.data_ptr)) return false;
  auto git = st.chunk_gen_seen.find(nqe.data_ptr);
  if (git != st.chunk_gen_seen.end() &&
      git->second == st.pool->Generation(nqe.data_ptr)) {
    return false;  // consumed by an accepted submission — not the guest's
  }
  return true;
}

bool NqeValidator::RecordViolation(uint8_t vm_id, Verdict v) {
  VmState& st = vms_[vm_id];
  ++stats_.rejects;
  ++st.stats.rejects;
  switch (v) {
    case Verdict::kBadOp: ++stats_.bad_op; ++st.stats.bad_op; break;
    case Verdict::kBadIdentity: ++stats_.bad_identity; ++st.stats.bad_identity; break;
    case Verdict::kBadChunk: ++stats_.bad_chunk; ++st.stats.bad_chunk; break;
    case Verdict::kReplayedChunk: ++stats_.replayed_chunk; ++st.stats.replayed_chunk; break;
    case Verdict::kBadCredit: ++stats_.credit_violations; ++st.stats.credit_violations; break;
    case Verdict::kOk: break;
  }
  ++st.violations;
  if (config_.policy == GuardPolicy::kQuarantine && !st.quarantined &&
      st.violations >= config_.quarantine_threshold) {
    SetQuarantined(vm_id, true);
    return true;
  }
  return false;
}

void NqeValidator::SetQuarantined(uint8_t vm_id, bool quarantined) {
  VmState& st = vms_[vm_id];
  if (quarantined && !st.quarantined) ++stats_.quarantines;
  if (!quarantined) st.violations = 0;
  st.quarantined = quarantined;
}

bool NqeValidator::IsQuarantined(uint8_t vm_id) const {
  auto it = vms_.find(vm_id);
  return it != vms_.end() && it->second.quarantined;
}

GuardVmStats NqeValidator::VmStats(uint8_t vm_id) const {
  auto it = vms_.find(vm_id);
  return it == vms_.end() ? GuardVmStats{} : it->second.stats;
}

}  // namespace netkernel::guard
