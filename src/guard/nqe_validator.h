// Copyright (c) NetKernel reproduction authors.
// nkguard: adversarial-guest NQE validation at the ring-consume boundary.
//
// Threat model (ROADMAP item 5): the CoreEngine and NSMs are shared
// infrastructure consuming shared-memory rings that untrusted tenant VMs
// write. Nothing stops a buggy or hostile guest from enqueuing an NQE with a
// bogus op byte, a chunk offset outside its pool (or inside it but free, or
// already submitted once), a forged vm_id/queue_set naming a co-tenant, or a
// datagram credit return for bytes it was never delivered. Before nkguard,
// each of those was "whatever the first switch statement happens to do".
//
// NqeValidator is the single audited choke point for that boundary. It is
// invoked by CoreEngineShard at ring-consume time (PollVm, before routing)
// and mirrors the machine-readable protocol contract annotated in
// src/shm/nqe.h (`guard=send|job` keys); tools/nklint's guard-coverage check
// cross-references the two so the admission tables here cannot drift from
// the contract. ServiceLib/ShmServiceLib additionally apply the
// IsGuestToNsmOp() prefilter on their consume path as defense in depth.
//
// Checks, in order, per inbound guest NQE:
//   identity   vm_id/queue_set must match the device+ring the NQE was
//              consumed from. A forged identity is corrected in place before
//              any completion is synthesized, so the reject lands on the
//              real offender — this is also what makes connection and dgram
//              socket ids unforgeable: CoreEngine keys every table by
//              (vm_id, vm_sock), and vm_id is pinned here.
//   op         the op byte must be admitted by that ring's table (send ring:
//              the four send-family ops; job ring: the control/dgram ops).
//   chunk      for carries-chunk ops with a registered pool: data_ptr must
//              be a currently-allocated chunk and size within its capacity.
//   replay     the chunk's allocation generation (HugepagePool::Generation)
//              must not have been consumed by a previously accepted NQE —
//              resubmitting the same incarnation is a credit replay.
//   credit     kRecvFrom may not return more datagram receive credit than
//              the engine has actually delivered to that VM.
//
// Policy on violation (GuardPolicy): kCount rejects and synthesizes the
// usual reclaim/error completion; kDrop rejects silently; kQuarantine
// additionally trips a per-VM quarantine once the violation count crosses
// the threshold — the engine stops consuming the offender's rings and the
// host tears its NSM-side state down without disturbing co-tenants.

#ifndef SRC_GUARD_NQE_VALIDATOR_H_
#define SRC_GUARD_NQE_VALIDATOR_H_

#include <cstdint>
#include <unordered_map>

#include "src/shm/hugepage_pool.h"
#include "src/shm/nqe.h"

namespace netkernel::guard {

// What to do beyond rejecting when a guest NQE fails validation.
enum class GuardPolicy : uint8_t {
  kCount = 0,       // reject + synthesize reclaim/error completion + count
  kDrop = 1,        // reject silently (no completion back to the guest)
  kQuarantine = 2,  // reject + count; trip per-VM quarantine at threshold
};

enum class Verdict : uint8_t {
  kOk = 0,
  kBadOp = 1,         // op byte not admitted by this ring/direction
  kBadIdentity = 2,   // forged vm_id / queue_set
  kBadChunk = 3,      // data_ptr not an allocated chunk, or size too large
  kReplayedChunk = 4, // chunk incarnation already consumed by an accepted NQE
  kBadCredit = 5,     // dgram credit return exceeds delivered bytes
};

const char* VerdictName(Verdict v);

struct GuardConfig {
  bool enabled = true;
  GuardPolicy policy = GuardPolicy::kCount;
  // kQuarantine only: violations before the VM is quarantined.
  uint32_t quarantine_threshold = 16;
};

// Aggregate guard counters (per-VM slices carry the same field names and are
// registered as guard.vm<N>.<field> in Host::BuildMetricsRegistry).
// nklint: stats
struct GuardStats {
  uint64_t validated = 0;          // guest NQEs that passed every check
  uint64_t rejects = 0;            // guest NQEs refused (sum of the verdicts)
  uint64_t bad_op = 0;
  uint64_t bad_identity = 0;
  uint64_t bad_chunk = 0;
  uint64_t replayed_chunk = 0;
  uint64_t credit_violations = 0;
  uint64_t flags_scrubbed = 0;     // NQEs with guest-written flag bytes zeroed
  uint64_t nsm_bad_op = 0;         // NSM-ring NQEs with a non-nsm->guest op
  uint64_t quarantines = 0;        // quarantine trips (operator or threshold)
  uint64_t quarantine_drops = 0;   // NQEs drained from quarantined VMs' rings
};

// Per-VM counter slice (field names deliberately mirror GuardStats).
struct GuardVmStats {
  uint64_t rejects = 0;
  uint64_t bad_op = 0;
  uint64_t bad_identity = 0;
  uint64_t bad_chunk = 0;
  uint64_t replayed_chunk = 0;
  uint64_t credit_violations = 0;
};

// ---- Admission tables -------------------------------------------------
// The machine-checked mirror of the `guard=` annotations in src/shm/nqe.h.
// nklint's guard-coverage check requires every annotated op to appear in
// this directory, so keep the enumerations explicit (no ranges).

// guard=send: ops a guest may legitimately place on its send ring.
bool IsSendRingOp(shm::NqeOp op);
// guard=job: ops a guest may legitimately place on its job ring.
bool IsJobRingOp(shm::NqeOp op);
// Union of the two: any op a guest->nsm consume path may dispatch.
bool IsGuestToNsmOp(shm::NqeOp op);
// dir=nsm->guest: ops an NSM may legitimately send toward a guest.
bool IsNsmToGuestOp(shm::NqeOp op);
// carries-chunk guest->nsm ops (chunk ownership crosses with the NQE).
bool CarriesGuestChunk(shm::NqeOp op);

class NqeValidator {
 public:
  explicit NqeValidator(const GuardConfig& config = {});

  bool enabled() const { return config_.enabled; }
  const GuardConfig& config() const { return config_; }
  void set_policy(GuardPolicy policy) { config_.policy = policy; }
  void set_quarantine_threshold(uint32_t n) { config_.quarantine_threshold = n; }

  // Associates a VM with its hugepage pool so chunk/replay checks can run.
  // VMs without a registered pool (raw-device tests, bench harnesses) skip
  // the chunk checks — there is no pool to validate against.
  void RegisterVmPool(uint8_t vm_id, const shm::HugepagePool* pool);
  void ForgetVmPool(uint8_t vm_id);

  // Zeroes the guest-writable flag bytes of an inbound NQE: reserved[0]
  // (orig-op echo) and reserved[2] (NSM processing queue set) are
  // infrastructure-owned on completions and must never be guest-seeded;
  // reserved[1] is zeroed except for kListen, whose reuseport flag is the
  // one legitimate guest use. The trace id (reserved[3..4]) is preserved.
  // Returns true when any byte was scrubbed (counted once in stats).
  bool ScrubGuestFlags(shm::Nqe* nqe);

  // Full admission check for an NQE consumed from `from_send_ring` of the
  // device registered under `dev_vm_id`, queue set `qset`. On a forged
  // identity the NQE's vm_id/queue_set are corrected in place (so any
  // synthesized completion targets the actual offender's rings). Pure with
  // respect to the ledgers: an accepted NQE may stay ring-resident across a
  // throttle/backpressure round and be re-validated — only CommitGuestNqe
  // (called when the NQE actually dequeues) spends state.
  Verdict ValidateGuestNqe(shm::Nqe* nqe, bool from_send_ring,
                           uint8_t dev_vm_id, uint8_t qset);

  // Ledger commit for an accepted, actually-dequeued guest NQE: records the
  // chunk incarnation as consumed (replay detection) and deducts returned
  // datagram credit.
  void CommitGuestNqe(uint8_t vm_id, const shm::Nqe& nqe);

  // NSM->guest direction check for NQEs consumed from NSM device rings.
  bool ValidateNsmNqe(const shm::Nqe& nqe);

  // Ledger feed: the engine accepted a datagram delivery of `bytes` toward
  // `vm_id`; that much receive credit may later come back via kRecvFrom.
  void OnDgramDelivered(uint8_t vm_id, uint64_t bytes);

  // True when the rejected NQE's chunk is still legitimately the guest's to
  // reclaim: allocated, inside the pool, and not an incarnation a previously
  // accepted NQE already consumed. Gates kNqeFlagChunkUnconsumed on
  // synthesized error completions — flagging a bogus or replayed offset
  // would make the guest double-free it.
  bool ChunkReclaimable(uint8_t vm_id, const shm::Nqe& nqe) const;

  // Counts a violation against `vm_id`. Returns true exactly when this
  // violation trips quarantine (policy kQuarantine, threshold reached, VM
  // not already quarantined) — the caller owns the deregistration side.
  bool RecordViolation(uint8_t vm_id, Verdict v);

  // kDrop rejects silently; the other policies answer the guest.
  bool ShouldSynthesizeError() const {
    return config_.policy != GuardPolicy::kDrop;
  }

  // Quarantine flag. Setting it true counts a quarantine trip; clearing it
  // resets the VM's violation count so re-quarantine needs fresh evidence.
  void SetQuarantined(uint8_t vm_id, bool quarantined);
  bool IsQuarantined(uint8_t vm_id) const;
  void CountQuarantineDrop() { ++stats_.quarantine_drops; }

  const GuardStats& stats() const { return stats_; }
  GuardVmStats VmStats(uint8_t vm_id) const;

 private:
  struct VmState {
    const shm::HugepagePool* pool = nullptr;
    // offset -> allocation generation consumed by an accepted NQE. A stale
    // entry (generation no longer current) is a past incarnation and does
    // not block reuse after free+realloc.
    std::unordered_map<uint64_t, uint16_t> chunk_gen_seen;
    uint64_t dgram_outstanding = 0;  // delivered dgram bytes not yet credited
    uint32_t violations = 0;
    bool quarantined = false;
    GuardVmStats stats;
  };

  Verdict CheckChunk(VmState* st, const shm::Nqe& nqe) const;

  GuardConfig config_;
  GuardStats stats_;
  std::unordered_map<uint8_t, VmState> vms_;
};

}  // namespace netkernel::guard

#endif  // SRC_GUARD_NQE_VALIDATOR_H_
