// Copyright (c) NetKernel reproduction authors.
// Wire-level types for the TCP implementation: segments, four-tuples, flags.
//
// Sequence numbers are 64-bit and absolute (no wraparound) — a simulation
// simplification that removes modular-arithmetic edge cases without changing
// any of the behaviour the paper evaluates.

#ifndef SRC_TCPSTACK_TCP_TYPES_H_
#define SRC_TCPSTACK_TCP_TYPES_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/netsim/packet.h"

namespace netkernel::tcp {

using netsim::IpAddr;
using SeqNum = uint64_t;
using SocketId = uint32_t;
constexpr SocketId kInvalidSocket = 0;

// Maximum segment size (payload bytes per on-wire segment) and the TSO chunk
// the stack hands to the NIC in one go (Linux GSO/TSO default of 64 KB).
constexpr uint32_t kMss = 1448;
constexpr uint32_t kTsoChunk = 64 * 1024;
// Per-MSS on-wire overhead: Ethernet (38 incl. preamble/IFG) + IP (20) +
// TCP (20 + 12 options).
constexpr uint32_t kWireOverheadPerSeg = 90;

inline uint32_t WireBytes(uint32_t payload) {
  uint32_t segs = payload == 0 ? 1 : (payload + kMss - 1) / kMss;
  return payload + segs * kWireOverheadPerSeg;
}

struct FourTuple {
  IpAddr local_ip = 0;
  uint16_t local_port = 0;
  IpAddr remote_ip = 0;
  uint16_t remote_port = 0;

  bool operator==(const FourTuple& o) const {
    return local_ip == o.local_ip && local_port == o.local_port && remote_ip == o.remote_ip &&
           remote_port == o.remote_port;
  }
};

struct FourTupleHash {
  size_t operator()(const FourTuple& t) const {
    uint64_t h = (static_cast<uint64_t>(t.local_ip) << 32) | t.remote_ip;
    h ^= (static_cast<uint64_t>(t.local_port) << 16) | t.remote_port;
    h *= 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

enum TcpFlags : uint8_t {
  kSyn = 1 << 0,
  kAck = 1 << 1,
  kFin = 1 << 2,
  kRst = 1 << 3,
  kEce = 1 << 4,  // ECN echo (DCTCP feedback)
  kCwr = 1 << 5,
};

// A TCP segment. May carry up to kTsoChunk payload bytes; the fabric treats it
// as the equivalent back-to-back train of MSS-sized packets (wire_bytes
// accounts for per-MSS header overhead).
struct Segment {
  FourTuple tuple;  // from the *sender's* perspective
  uint8_t flags = 0;
  SeqNum seq = 0;
  SeqNum ack = 0;
  uint64_t rwnd = 0;           // advertised receive window, bytes
  SimTime ts = 0;              // timestamp option (echoed for RTT)
  SimTime ts_echo = 0;
  std::vector<uint8_t> payload;

  bool Has(TcpFlags f) const { return (flags & f) != 0; }
};

using SegmentPtr = std::shared_ptr<const Segment>;

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

const char* TcpStateName(TcpState s);

// Socket-level error codes surfaced through the API (values mirror errno).
enum TcpError : int {
  kOk = 0,
  kConnRefused = -111,
  kConnReset = -104,
  kTimedOut = -110,
  kAddrInUse = -98,
  kNotConnected = -107,
  kWouldBlock = -11,
  kInvalidArg = -22,  // e.g. an unknown zero-copy loan handle
};

}  // namespace netkernel::tcp

#endif  // SRC_TCPSTACK_TCP_TYPES_H_
