// Copyright (c) NetKernel reproduction authors.
// TcpStack: a from-scratch TCP implementation over the simulated fabric.
//
// One implementation serves every placement the paper evaluates:
//   * inside the guest VM (Baseline — the "existing architecture"),
//   * inside a kernel-stack NSM (ServiceLib drives it),
//   * inside an mTCP NSM (userspace cost profile, per-core tables).
//
// Protocol features: three-way handshake, sliding-window transfer with TSO
// chunking, cumulative ACKs, out-of-order reassembly, flow control with
// window updates and persist probes, RTT estimation (RFC 6298), RTO and
// triple-dupack fast retransmit with NewReno-style recovery, full close state
// machine, RST handling, listen/accept with backlog and SO_REUSEPORT, and
// pluggable congestion control (Reno/CUBIC/DCTCP/shared-window).
//
// CPU accounting: every operation charges cycles from the stack's CostProfile
// onto one of the CpuCores the stack is pinned to (connections are spread by
// RSS hash). Protocol correctness and performance curves both emerge from the
// same event-driven machinery.
//
// The API is non-blocking and callback-based; coroutine façades for guest
// applications live in src/core/socket_api.h.

#ifndef SRC_TCPSTACK_STACK_H_
#define SRC_TCPSTACK_STACK_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/netsim/nic.h"
#include "src/sim/cpu.h"
#include "src/sim/event_loop.h"
#include "src/tcpstack/byte_buffer.h"
#include "src/tcpstack/cc.h"
#include "src/tcpstack/cost_model.h"
#include "src/tcpstack/tcp_types.h"

namespace netkernel::tcp {

struct SocketCallbacks {
  std::function<void(int err)> on_connect;  // 0 on success, TcpError otherwise
  std::function<void()> on_readable;        // new data or FIN available
  std::function<void()> on_writable;        // send-buffer space freed
  std::function<void()> on_acceptable;      // listener: connection ready
  std::function<void(int err)> on_error;    // connection reset / aborted
};

struct TcpStackConfig {
  std::string name = "tcp";
  CostProfile profile = KernelProfile();
  // Factory for per-connection congestion control; defaults to CUBIC.
  CcFactory cc_factory;
  // mTCP-style per-core listener/port tables: no shared-lock serialization.
  bool per_core_tables = false;
  uint64_t sndbuf_bytes = 4 * kMiB;
  uint64_t rcvbuf_bytes = 1 * kMiB;
  bool ecn = false;  // send ECN-capable packets (DCTCP)
  int rx_batch = 64;
  SimTime min_rto = 5 * kMillisecond;
  SimTime time_wait = 0;  // 2MSL hold; 0 frees immediately (sim default)
  // NIC-ring overflow model: drop arriving packets when the owning core is
  // backlogged beyond this horizon.
  SimTime rx_backlog_cap = 3 * kMillisecond;
  // NIC line rate hint used to model TX-completion timing (TSQ release).
  BitRate nic_rate_hint = 100 * kGbps;
  uint64_t seed = 1;
};

// nklint: stats
struct TcpStackStats {
  uint64_t segments_sent = 0;
  uint64_t segments_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t retransmits = 0;
  uint64_t rto_fires = 0;
  uint64_t fast_retransmits = 0;
  uint64_t conns_established = 0;
  uint64_t conns_closed = 0;
  uint64_t rx_ring_drops = 0;
  uint64_t rsts_sent = 0;
};

class TcpStack {
 public:
  TcpStack(sim::EventLoop* loop, netsim::Nic* nic, std::vector<sim::CpuCore*> cores,
           TcpStackConfig config);
  ~TcpStack();
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  // ---- Socket API (non-blocking; callbacks signal progress) ----

  SocketId CreateSocket();
  int Bind(SocketId id, IpAddr ip, uint16_t port);
  int Listen(SocketId id, int backlog, bool reuseport = false);
  // Initiates the handshake; on_connect fires when established or failed.
  int Connect(SocketId id, IpAddr dst_ip, uint16_t dst_port);
  // Pops an established connection, or kInvalidSocket if none pending.
  SocketId Accept(SocketId listener);
  // Queues up to `n` bytes (bounded by send-buffer space). Returns queued.
  uint64_t Send(SocketId id, const uint8_t* data, uint64_t n);
  // Queues `n` bytes by reference (zero-copy): the stack transmits — and
  // retransmits — directly from `data`, which must stay valid until
  // `on_freed` fires. It fires exactly once: when the range is ACKed and
  // drops off the send buffer, or when the socket is torn down with it still
  // queued. All-or-nothing: returns false (ownership stays with the caller)
  // when the socket cannot send or send-buffer space is short.
  bool SendZc(SocketId id, const uint8_t* data, uint32_t n, std::function<void()> on_freed);
  // Reads up to `max` bytes of in-order data. Returns bytes read.
  uint64_t Recv(SocketId id, uint8_t* out, uint64_t max);
  // Installs the chunk allocator the socket's receive buffer draws from:
  // inbound payload lands directly in allocator chunks (the NSM passes one
  // backed by the owning VM's hugepage pool), so the consumer can detach and
  // forward them without the rcvbuf->hugepage copy. Install before data
  // arrives (right after CreateSocket / at accept).
  void SetRxChunkAllocator(SocketId id, std::shared_ptr<ChunkAllocator> allocator);
  // True when the front of the receive buffer is a whole allocator chunk.
  bool RxDetachable(SocketId id) const;
  // Zero-copy receive: detaches the front chunk of the receive buffer —
  // ownership of the allocator handle transfers to the caller, no copy. Has
  // the same window-update side effects as Recv. Returns false when the
  // front is heap-backed or partially consumed (use Recv for those bytes).
  bool RecvZcDetach(SocketId id, DetachedChunk* out);
  // Appends that missed the RX allocator (pool exhausted) on this socket.
  uint64_t RxPoolFallbacks(SocketId id) const;
  void Close(SocketId id);
  void Abort(SocketId id);  // RST

  void SetCallbacks(SocketId id, SocketCallbacks cbs);
  // Replaces the connection's congestion control (used by the FairShare NSM).
  void SetCongestionControl(SocketId id, std::unique_ptr<CongestionControl> cc);

  // ---- Introspection ----

  bool Exists(SocketId id) const { return socks_.count(id) != 0; }
  TcpState State(SocketId id) const;
  FourTuple Tuple(SocketId id) const;
  uint64_t SendBufSpace(SocketId id) const;
  uint64_t RecvAvailable(SocketId id) const;
  bool FinReceived(SocketId id) const;
  bool HasPendingAccept(SocketId id) const;
  int SocketError(SocketId id) const;
  int CoreIndex(SocketId id) const;

  const TcpStackStats& stats() const { return stats_; }
  const TcpStackConfig& config() const { return config_; }
  sim::EventLoop* loop() { return loop_; }
  netsim::Nic* nic() { return nic_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  sim::CpuCore* core(int i) { return cores_[i]; }

  // Charges `cycles` on the core owning socket `id`, then runs `fn`. Used by
  // layers above (ServiceLib) whose work shares the stack cores.
  void ChargeOnSocketCore(SocketId id, Cycles cycles, std::function<void()> fn);

  // IP-protocol demux: this stack owns the NIC's softirq path; packets whose
  // protocol is not TCP are handed to this handler (e.g. the host's UdpStack).
  void SetRawPacketHandler(std::function<void(netsim::Packet)> handler) {
    raw_packet_handler_ = std::move(handler);
  }

 private:
  struct Sock {
    SocketId id = kInvalidSocket;
    TcpState state = TcpState::kClosed;
    FourTuple tuple;
    int core_idx = 0;
    SocketCallbacks cbs;
    std::unique_ptr<CongestionControl> cc;
    int err = 0;
    bool bound = false;
    bool app_closed = false;

    // Listener state.
    bool listening = false;
    bool reuseport = false;
    int backlog = 0;
    int pending_children = 0;
    std::deque<SocketId> accept_q;
    SocketId parent = kInvalidSocket;

    // Transmit state.
    ByteBuffer sndbuf;
    uint64_t sndbuf_limit = 0;
    SeqNum iss = 0;
    SeqNum snd_una = 0;
    SeqNum snd_nxt = 0;
    uint64_t peer_rwnd = 64 * kKiB;
    bool tx_charge_pending = false;
    uint64_t tsq_outstanding = 0;  // bytes in NIC/qdisc awaiting TX completion
    bool fin_pending = false;
    bool fin_sent = false;
    int dupacks = 0;
    SeqNum recovery_end = 0;
    SimTime srtt = 0;
    SimTime rttvar = 0;
    SimTime rto = 0;
    sim::EventHandle rto_timer;
    sim::EventHandle persist_timer;
    sim::EventHandle time_wait_timer;

    // Receive state.
    ByteBuffer rcvbuf;
    std::shared_ptr<ChunkAllocator> rx_allocator;  // inherited by children
    uint64_t rcvbuf_limit = 0;
    SeqNum irs = 0;
    SeqNum rcv_nxt = 0;
    std::map<SeqNum, std::vector<uint8_t>> ooo;
    uint64_t ooo_bytes = 0;
    bool fin_rcvd = false;
    bool fin_delivered = false;
    uint64_t last_advertised_wnd = 0;
    SimTime last_rx_ts = 0;  // timestamp to echo
  };

  Sock* Find(SocketId id);
  const Sock* Find(SocketId id) const;
  Sock& MustFind(SocketId id);

  // Datapath.
  void OnNicRxNotify();
  void ScheduleRxDrain(SimTime delay);
  void DrainRx();
  void HandleSegment(const Segment& seg, bool ce_marked);
  void HandleSynAtListener(const Segment& seg, bool ce_marked);
  SocketId DemuxLookupAfterAck(const Segment& seg);
  void HandleEstablishedData(Sock& s, const Segment& seg, bool ce_marked);
  void HandleAck(Sock& s, const Segment& seg);
  void PumpTx(SocketId id);
  void EmitSegment(Sock& s, uint8_t flags, SeqNum seq, const uint8_t* payload, uint32_t len,
                   bool charge = false);
  void SendAck(Sock& s, bool ece);
  void SendRst(const FourTuple& from_tuple, SeqNum seq, SeqNum ack);
  void MaybeSendWindowUpdate(Sock& s, uint64_t before_window);
  uint64_t AdvertisedWindow(const Sock& s) const;

  // Timers.
  void ArmRto(Sock& s);
  void CancelRto(Sock& s);
  void OnRto(SocketId id);
  void ArmPersist(Sock& s);
  void OnPersist(SocketId id);
  void UpdateRtt(Sock& s, SimTime rtt_sample);

  // Lifecycle.
  void EstablishChild(Sock& child);
  void MaybeSendFin(Sock& s);
  void OnFinAcked(Sock& s);
  void EnterTimeWait(Sock& s);
  void DestroySock(SocketId id);
  void FreeTupleAndTeardown(Sock& s);
  void FailConnection(Sock& s, int err);

  // Shared-table lock (kernel profile): serializes across stack cores.
  void ChargeWithSharedLock(int core_idx, Cycles work, std::function<void()> fn);

  uint16_t AllocEphemeralPort();
  int RssCore(const FourTuple& tuple) const;

  sim::EventLoop* loop_;
  netsim::Nic* nic_;
  std::vector<sim::CpuCore*> cores_;
  TcpStackConfig config_;
  Rng rng_;
  sim::SimMutex table_lock_;

  SocketId next_id_ = 1;
  std::unordered_map<SocketId, std::unique_ptr<Sock>> socks_;
  std::unordered_map<FourTuple, SocketId, FourTupleHash> demux_;
  // port -> listeners (reuseport group when >1).
  std::unordered_map<uint16_t, std::vector<SocketId>> listeners_;
  uint16_t next_ephemeral_ = 32768;
  bool rx_drain_scheduled_ = false;
  std::function<void(netsim::Packet)> raw_packet_handler_;
  TcpStackStats stats_;
};

}  // namespace netkernel::tcp

#endif  // SRC_TCPSTACK_STACK_H_
