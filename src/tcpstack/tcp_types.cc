// Copyright (c) NetKernel reproduction authors.

#include "src/tcpstack/tcp_types.h"

namespace netkernel::tcp {

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

}  // namespace netkernel::tcp
