// Copyright (c) NetKernel reproduction authors.

#include "src/tcpstack/cc.h"

#include <cmath>

namespace netkernel::tcp {

void CubicCc::OnAck(uint64_t bytes_acked, SimTime rtt, bool ece) {
  virtual_clock_ += rtt > 0 ? rtt / 8 : kMicrosecond;  // monotone proxy clock
  if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ + bytes_acked, kMaxWindow);
    return;
  }
  if (epoch_start_ < 0) {
    epoch_start_ = virtual_clock_;
    if (w_max_ > cwnd_) {
      k_ = std::cbrt(static_cast<double>(w_max_ - cwnd_) / kMss / kC);
    } else {
      k_ = 0.0;
      w_max_ = cwnd_;
    }
  }
  double t = ToSeconds(virtual_clock_ - epoch_start_);
  double target_mss =
      static_cast<double>(w_max_) / kMss + kC * (t - k_) * (t - k_) * (t - k_);
  uint64_t target = static_cast<uint64_t>(target_mss * kMss);
  if (target > cwnd_) {
    // Approach the cubic target over roughly one RTT.
    cwnd_ += std::max<uint64_t>(1, (target - cwnd_) * bytes_acked / (cwnd_ + 1));
  } else {
    cwnd_ += std::max<uint64_t>(1, kMss * bytes_acked / (100 * cwnd_ / kMss + 1));
  }
  cwnd_ = std::min(cwnd_, kMaxWindow);
}

void CubicCc::OnLoss() {
  w_max_ = cwnd_;
  cwnd_ = std::max<uint64_t>(static_cast<uint64_t>(static_cast<double>(cwnd_) * kBeta), 2 * kMss);
  ssthresh_ = cwnd_;
  epoch_start_ = -1;
}

void CubicCc::OnTimeout() {
  w_max_ = cwnd_;
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2 * kMss);
  cwnd_ = 2 * kMss;
  epoch_start_ = -1;
}

void DctcpCc::OnAck(uint64_t bytes_acked, SimTime rtt, bool ece) {
  acked_total_ += bytes_acked;
  if (ece) acked_ece_ += bytes_acked;

  if (cwnd_ < ssthresh_ && !ece) {
    cwnd_ = std::min(cwnd_ + bytes_acked, kMaxWindow);
  } else if (!ece) {
    cwnd_ += std::max<uint64_t>(1, kMss * bytes_acked / cwnd_);
    cwnd_ = std::min(cwnd_, kMaxWindow);
  }

  // Once per window of data: update alpha and, if marks were seen, back off
  // proportionally (the DCTCP control law).
  if (acked_total_ >= window_end_bytes_ + cwnd_) {
    double frac = acked_total_ > 0
                      ? static_cast<double>(acked_ece_) / static_cast<double>(acked_total_ -
                                                                              window_end_bytes_)
                      : 0.0;
    if (frac > 1.0) frac = 1.0;
    alpha_ = (1.0 - kG) * alpha_ + kG * frac;
    if (frac > 0.0) {
      uint64_t reduced = static_cast<uint64_t>(static_cast<double>(cwnd_) * (1.0 - alpha_ / 2.0));
      cwnd_ = std::max<uint64_t>(reduced, 2 * kMss);
      ssthresh_ = cwnd_;
    }
    window_end_bytes_ = acked_total_;
    acked_ece_ = 0;
  }
}

void DctcpCc::OnLoss() {
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2 * kMss);
  cwnd_ = ssthresh_;
}

void DctcpCc::OnTimeout() {
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2 * kMss);
  cwnd_ = 2 * kMss;
}

}  // namespace netkernel::tcp
