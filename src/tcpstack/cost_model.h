// Copyright (c) NetKernel reproduction authors.
// CPU cost profiles for the simulated stacks, in cycles of a 2.3 GHz core
// (the paper testbed's Xeon E5-2698 v3).
//
// One TCP protocol implementation serves both "placements" the paper
// compares; what differs is where the cycles are spent and how much each
// operation costs:
//   * kKernelProfile  — Linux kernel TCP: syscall crossings, softirq RX,
//     shared listener/port-table locks (sublinear multicore scaling).
//   * kMtcpProfile    — mTCP on DPDK: no syscalls, polled RX, per-core
//     listener tables, batched event delivery.
// Constants are calibrated so the Baseline configuration lands in the
// ballpark of the paper's absolute numbers (Figs 13-20); EXPERIMENTS.md
// records the calibration targets next to each measured result.

#ifndef SRC_TCPSTACK_COST_MODEL_H_
#define SRC_TCPSTACK_COST_MODEL_H_

#include "src/common/units.h"

namespace netkernel::tcp {

struct CostProfile {
  // Application/system boundary.
  Cycles syscall = 0;            // one user->kernel->user crossing
  double copy_per_byte = 0.0;    // any bulk memory copy, cycles/byte

  // Transmit path (per TSO chunk handed to the NIC).
  Cycles tx_fixed_per_chunk = 0;  // skb alloc, qdisc, driver doorbell
  Cycles tx_per_seg = 0;          // segmentation/checksum per MSS
  double tx_per_byte = 0.0;

  // Receive path.
  Cycles rx_irq_fixed = 0;   // per interrupt/poll batch (NAPI round)
  Cycles rx_per_seg = 0;     // protocol processing per MSS of data
  double rx_per_byte = 0.0;  // payload touching (checksum, copy to sk buf)
  Cycles rx_per_ack = 0;     // pure-ACK processing on the sender

  // Connection lifecycle.
  Cycles conn_setup = 0;     // SYN/SYN-ACK processing + socket allocation
  Cycles conn_accept = 0;    // accept() dequeue + fd install
  Cycles conn_teardown = 0;  // FIN handling + socket free

  // Shared-table critical sections (listener hash, ephemeral ports). These
  // serialize across all cores of one stack instance and produce the
  // sublinear short-connection scaling of Fig 20 / Table 3.
  Cycles shared_lock_hold = 0;

  // Event notification.
  Cycles epoll_wakeup = 0;  // waking a blocked epoll_wait
  Cycles epoll_fetch = 0;   // per returned event

  // RX interrupt coalescing delay before the stack drains the NIC.
  SimTime rx_coalesce_delay = 0;

  // TX completion signalling: a socket may keep at most tsq_limit bytes in
  // the NIC/qdisc (Linux TCP Small Queues); completions are coalesced and
  // arrive tx_completion_delay after the chunk hits the wire. Together these
  // bound a single stream's pipelining (Fig 13 vs Fig 15).
  uint64_t tsq_limit_bytes = 128 * 1024;
  SimTime tx_completion_delay = 25 * kMicrosecond;
};

// Linux kernel TCP stack (guest kernel in Baseline; kernel-stack NSM in
// NetKernel). Calibration anchors:
//   ~55 Gbps 1-core 8-stream send (Fig 15), ~31 Gbps single stream (Fig 13),
//   ~14 Gbps 1-core receive (Fig 14), ~70 K RPS/core and 5.7x at 8 cores
//   (Fig 17/20), 100 G send with 3 cores (Fig 18).
inline CostProfile KernelProfile() {
  CostProfile p;
  p.syscall = 450;
  p.copy_per_byte = 0.05;
  p.tx_fixed_per_chunk = 900;
  p.tx_per_seg = 250;
  p.tx_per_byte = 0.04;
  p.rx_irq_fixed = 2500;
  p.rx_per_seg = 1220;
  p.rx_per_byte = 0.22;
  p.rx_per_ack = 450;
  p.conn_setup = 7400;
  p.conn_accept = 2000;
  p.conn_teardown = 6200;
  p.shared_lock_hold = 900;
  p.epoll_wakeup = 1500;
  p.epoll_fetch = 250;
  p.rx_coalesce_delay = 6 * kMicrosecond;
  return p;
}

// mTCP over DPDK (userspace NSM). Calibration anchors: 190 K RPS at 1 core
// scaling to 1.1 M at 8 (Fig 20), 1.4-1.9x nginx RPS vs kernel (Table 3),
// tight latency distribution (Table 5).
inline CostProfile MtcpProfile() {
  CostProfile p;
  p.syscall = 60;  // library call, no privilege crossing
  p.copy_per_byte = 0.05;
  p.tx_fixed_per_chunk = 420;
  p.tx_per_seg = 160;
  p.tx_per_byte = 0.04;
  p.rx_irq_fixed = 350;  // DPDK poll-mode batch
  p.rx_per_seg = 700;
  p.rx_per_byte = 0.15;
  p.rx_per_ack = 180;
  p.conn_setup = 3700;
  p.conn_accept = 700;
  p.conn_teardown = 3100;
  p.shared_lock_hold = 300;  // per-core tables; tiny residual sharing
  p.epoll_wakeup = 250;      // mtcp_epoll_wait in the same address space
  p.epoll_fetch = 60;
  p.rx_coalesce_delay = 2 * kMicrosecond;
  return p;
}

// Profile for traffic sinks/sources on the *other* testbed machine of a
// send/receive experiment: the paper's peer host has all 16 cores enabled,
// so softirq processing spreads and the peer is never the bottleneck
// (footnote 3 of the paper). RX costs model spread softirqs.
inline CostProfile SinkProfile() {
  CostProfile p = KernelProfile();
  p.rx_irq_fixed = 1500;
  p.rx_per_seg = 150;
  p.rx_per_byte = 0.08;
  p.rx_coalesce_delay = 4 * kMicrosecond;
  // The peer machine drives load from many cores and is never the measured
  // bottleneck; keep its per-connection path light.
  p.conn_setup = 2000;
  p.conn_teardown = 1500;
  p.shared_lock_hold = 120;
  p.epoll_wakeup = 600;
  return p;
}

// NetKernel-plumbing costs (GuestLib / CoreEngine / ServiceLib), independent
// of which stack runs in the NSM. Anchors: Fig 11 (NQE switching rate vs
// batch), Fig 12 (hugepage copy path), Table 6/7 CPU overheads.
struct NetkernelCosts {
  // GuestLib: translate one socket call into an NQE and enqueue it.
  Cycles guestlib_translate = 100;
  // ServiceLib: parse one NQE and invoke the stack API.
  Cycles servicelib_translate = 120;
  // Hugepage copy, cycles/byte (userspace <-> hugepage, hugepage <-> stack).
  double hugepage_copy_per_byte = 0.09;
  // CoreEngine: cycles to switch one NQE (two ring copies + table lookup),
  // as a function of the polling batch size (Fig 11 calibration).
  Cycles ce_per_nqe_batch1 = 287;
  Cycles ce_per_nqe_batch4 = 103;
  Cycles ce_per_nqe_batch16 = 35;
  Cycles ce_per_nqe_batch64 = 19;
  // Connection-table operations.
  Cycles ce_table_lookup = 40;
  Cycles ce_table_insert = 120;
  // nkguard admission check per consumed guest NQE: a short chain of
  // always-predicted compares against the ring's op table plus the identity
  // pin; the chunk/replay hash probes only run for pool-backed VMs, whose
  // per-NQE budget is dominated by the copy/translate costs anyway.
  Cycles ce_guard_check = 1;
  // GuestLib NK device interrupt-driven polling (paper §4.6).
  SimTime guest_poll_period = 20 * kMicrosecond;  // poll before sleeping
  SimTime guest_poll_interval = 1 * kMicrosecond;
  // Cost to deliver a wakeup interrupt to a sleeping NK device.
  Cycles device_wakeup = 700;

  Cycles CePerNqe(int batch) const {
    if (batch >= 64) return ce_per_nqe_batch64;
    if (batch >= 16) return ce_per_nqe_batch16;
    if (batch >= 4) return ce_per_nqe_batch4;
    return ce_per_nqe_batch1;
  }
};

}  // namespace netkernel::tcp

#endif  // SRC_TCPSTACK_COST_MODEL_H_
