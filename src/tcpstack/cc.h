// Copyright (c) NetKernel reproduction authors.
// Congestion control algorithms. The stack drives these with ACK/loss/ECN
// events; they answer one question: how many bytes may be in flight.
//
// Reno and CUBIC reproduce standard flow-level fairness (the Baseline in
// Fig 9); DCTCP exercises the ECN path; SharedWindow implements the paper's
// use case 2 — a VM-level congestion window shared by all of a VM's
// connections, each restricted to 1/n of it (Seawall-style fairness §6.2).

#ifndef SRC_TCPSTACK_CC_H_
#define SRC_TCPSTACK_CC_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/tcpstack/tcp_types.h"

namespace netkernel::tcp {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual std::string Name() const = 0;
  // Bytes this connection may have unacknowledged in flight.
  virtual uint64_t Window() const = 0;
  virtual void OnAck(uint64_t bytes_acked, SimTime rtt, bool ece) = 0;
  virtual void OnLoss() = 0;     // triple-dupack fast retransmit
  virtual void OnTimeout() = 0;  // RTO fired
  // Lifecycle hooks for window-sharing implementations.
  virtual void OnConnect() {}
  virtual void OnCloseConn() {}
};

using CcFactory = std::function<std::unique_ptr<CongestionControl>()>;

// Classic NewReno-style additive-increase multiplicative-decrease.
class RenoCc : public CongestionControl {
 public:
  explicit RenoCc(uint64_t init_window = 10 * kMss) : cwnd_(init_window) {}

  std::string Name() const override { return "reno"; }
  uint64_t Window() const override { return cwnd_; }

  void OnAck(uint64_t bytes_acked, SimTime rtt, bool ece) override {
    if (cwnd_ < ssthresh_) {
      cwnd_ += bytes_acked;  // slow start
    } else {
      cwnd_ += std::max<uint64_t>(1, kMss * bytes_acked / cwnd_);  // AIMD
    }
    cwnd_ = std::min(cwnd_, kMaxWindow);
  }

  void OnLoss() override {
    ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2 * kMss);
    cwnd_ = ssthresh_;
  }

  void OnTimeout() override {
    ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2 * kMss);
    cwnd_ = 2 * kMss;
  }

 protected:
  static constexpr uint64_t kMaxWindow = 64 * kMiB;
  uint64_t cwnd_;
  uint64_t ssthresh_ = UINT64_MAX;
};

// CUBIC (the Linux default the paper's Baseline runs).
class CubicCc : public CongestionControl {
 public:
  explicit CubicCc(uint64_t init_window = 10 * kMss) : cwnd_(init_window) {}

  std::string Name() const override { return "cubic"; }
  uint64_t Window() const override { return cwnd_; }

  void OnAck(uint64_t bytes_acked, SimTime rtt, bool ece) override;
  void OnLoss() override;
  void OnTimeout() override;

 private:
  static constexpr uint64_t kMaxWindow = 64 * kMiB;
  static constexpr double kBeta = 0.7;
  static constexpr double kC = 0.4;

  uint64_t cwnd_;
  uint64_t ssthresh_ = UINT64_MAX;
  uint64_t w_max_ = 0;
  double k_ = 0.0;
  SimTime epoch_start_ = -1;
  SimTime now_ = 0;  // advanced by OnAck timestamps via rtt accumulation
  SimTime virtual_clock_ = 0;
};

// DCTCP: ECN-fraction-proportional backoff (needs ECN-marking switches).
class DctcpCc : public CongestionControl {
 public:
  explicit DctcpCc(uint64_t init_window = 10 * kMss, uint64_t init_ssthresh = UINT64_MAX)
      : cwnd_(init_window), ssthresh_(init_ssthresh) {}

  std::string Name() const override { return "dctcp"; }
  uint64_t Window() const override { return cwnd_; }

  void OnAck(uint64_t bytes_acked, SimTime rtt, bool ece) override;
  void OnLoss() override;
  void OnTimeout() override;

  double alpha() const { return alpha_; }

 private:
  static constexpr uint64_t kMaxWindow = 64 * kMiB;
  static constexpr double kG = 1.0 / 16.0;

  uint64_t cwnd_;
  uint64_t ssthresh_;
  double alpha_ = 1.0;
  uint64_t acked_total_ = 0;
  uint64_t acked_ece_ = 0;
  uint64_t window_end_bytes_ = 0;
};

// VM-level shared congestion window (paper §6.2). One SharedWindowGroup
// exists per VM inside the FairShare NSM; every connection of that VM holds a
// SharedWindowCc referencing the group. ACKs from any flow advance the shared
// window; each flow may use at most 1/n of it.
//
// Window dynamics are DCTCP-style (ECN-fraction-proportional backoff): two
// or more VM-level windows on a marking bottleneck converge smoothly to
// equal shares, whereas loss-synchronized AIMD between a handful of
// aggregates oscillates. Drop-based loss still triggers a (suppressed,
// once-per-window) multiplicative decrease so non-ECN bottlenecks work too.
class SharedWindowGroup {
 public:
  // Start in congestion avoidance (low ssthresh): VM-level aggregates that
  // slow-start against each other converge to fairness very slowly, whereas
  // equal additive growth from small windows is fair from the start.
  explicit SharedWindowGroup(uint64_t init_window = 10 * kMss)
      : cc_(init_window, 32 * kMss) {}

  uint64_t cwnd() const { return cc_.Window(); }
  int active_flows() const { return active_flows_; }

  void AddFlow() { ++active_flows_; }
  void RemoveFlow() {
    if (active_flows_ > 0) --active_flows_;
  }

  void OnAck(uint64_t bytes_acked, bool ece) {
    acked_since_backoff_ += bytes_acked;
    cc_.OnAck(bytes_acked, 0, ece);
  }
  // One multiplicative decrease per VM-level congestion event: several flows
  // of the group losing packets in the same window must not stack halvings.
  void OnLoss() {
    if (acked_since_backoff_ < cwnd()) return;
    acked_since_backoff_ = 0;
    cc_.OnLoss();
  }
  void OnTimeout() {
    if (acked_since_backoff_ < cwnd() / 2) return;
    acked_since_backoff_ = 0;
    cc_.OnTimeout();
  }

  // Per-flow share: cwnd / n (at least one MSS so flows are never starved).
  uint64_t FlowShare() const {
    int n = active_flows_ > 0 ? active_flows_ : 1;
    uint64_t share = cwnd() / static_cast<uint64_t>(n);
    return share < kMss ? kMss : share;
  }

 private:
  DctcpCc cc_;
  uint64_t acked_since_backoff_ = UINT64_MAX / 2;  // first loss always counts
  int active_flows_ = 0;
};

class SharedWindowCc : public CongestionControl {
 public:
  explicit SharedWindowCc(std::shared_ptr<SharedWindowGroup> group) : group_(std::move(group)) {}

  std::string Name() const override { return "shared-window"; }
  uint64_t Window() const override { return group_->FlowShare(); }
  void OnAck(uint64_t bytes_acked, SimTime rtt, bool ece) override {
    group_->OnAck(bytes_acked, ece);
  }
  void OnLoss() override { group_->OnLoss(); }
  void OnTimeout() override { group_->OnTimeout(); }
  void OnConnect() override { group_->AddFlow(); }
  void OnCloseConn() override { group_->RemoveFlow(); }

 private:
  std::shared_ptr<SharedWindowGroup> group_;
};

}  // namespace netkernel::tcp

#endif  // SRC_TCPSTACK_CC_H_
