// Copyright (c) NetKernel reproduction authors.

#include "src/tcpstack/stack.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace netkernel::tcp {

namespace {

constexpr int kMaxSynRetries = 6;
constexpr SimTime kMaxRto = 2 * kSecond;

uint64_t SymmetricFlowHash(const FourTuple& t) {
  uint64_t a = (static_cast<uint64_t>(t.local_ip) << 16) ^ t.local_port;
  uint64_t b = (static_cast<uint64_t>(t.remote_ip) << 16) ^ t.remote_port;
  uint64_t h = (a ^ b) * 0x9e3779b97f4a7c15ULL;
  return h ^ (h >> 29);
}

FourTuple Invert(const FourTuple& t) {
  return FourTuple{t.remote_ip, t.remote_port, t.local_ip, t.local_port};
}

uint32_t SegCount(uint32_t payload) {
  return payload == 0 ? 1 : (payload + kMss - 1) / kMss;
}

}  // namespace

TcpStack::TcpStack(sim::EventLoop* loop, netsim::Nic* nic, std::vector<sim::CpuCore*> cores,
                   TcpStackConfig config)
    : loop_(loop),
      nic_(nic),
      cores_(std::move(cores)),
      config_(std::move(config)),
      rng_(config_.seed),
      table_lock_(loop) {
  NK_CHECK(!cores_.empty());
  if (!config_.cc_factory) {
    config_.cc_factory = [] { return std::make_unique<CubicCc>(); };
  }
  if (nic_ != nullptr) {
    nic_->SetRxNotify([this] { OnNicRxNotify(); });
  }
}

TcpStack::~TcpStack() {
  if (nic_ != nullptr) nic_->SetRxNotify(nullptr);
}

// ---------------------------------------------------------------------------
// Socket lifecycle & API
// ---------------------------------------------------------------------------

TcpStack::Sock* TcpStack::Find(SocketId id) {
  auto it = socks_.find(id);
  return it == socks_.end() ? nullptr : it->second.get();
}

const TcpStack::Sock* TcpStack::Find(SocketId id) const {
  auto it = socks_.find(id);
  return it == socks_.end() ? nullptr : it->second.get();
}

TcpStack::Sock& TcpStack::MustFind(SocketId id) {
  Sock* s = Find(id);
  NK_CHECK_MSG(s != nullptr, "socket id not found");
  return *s;
}

SocketId TcpStack::CreateSocket() {
  auto sock = std::make_unique<Sock>();
  sock->id = next_id_++;
  sock->sndbuf_limit = config_.sndbuf_bytes;
  sock->rcvbuf_limit = config_.rcvbuf_bytes;
  sock->cc = config_.cc_factory();
  sock->rto = config_.min_rto;
  SocketId id = sock->id;
  socks_[id] = std::move(sock);
  return id;
}

int TcpStack::Bind(SocketId id, IpAddr ip, uint16_t port) {
  Sock* s = Find(id);
  if (s == nullptr) return kNotConnected;
  s->tuple.local_ip = ip == 0 ? (nic_ != nullptr ? nic_->ip() : 0) : ip;
  s->tuple.local_port = port;
  s->bound = true;
  return kOk;
}

int TcpStack::Listen(SocketId id, int backlog, bool reuseport) {
  Sock* s = Find(id);
  if (s == nullptr) return kNotConnected;
  NK_CHECK(s->bound);
  auto& group = listeners_[s->tuple.local_port];
  if (!group.empty()) {
    if (!reuseport) return kAddrInUse;
    Sock* first = Find(group.front());
    if (first != nullptr && !first->reuseport) return kAddrInUse;
  }
  s->listening = true;
  s->reuseport = reuseport;
  s->backlog = backlog > 0 ? backlog : 128;
  s->state = TcpState::kListen;
  // Spread reuseport listeners across cores (mTCP pins one per core; the
  // kernel's reuseport groups behave similarly for our purposes).
  s->core_idx = static_cast<int>(group.size()) % static_cast<int>(cores_.size());
  group.push_back(id);
  return kOk;
}

uint16_t TcpStack::AllocEphemeralPort() {
  for (int attempts = 0; attempts < 65536; ++attempts) {
    uint16_t p = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65535 ? 32768 : next_ephemeral_ + 1;
    if (listeners_.count(p) == 0) return p;
  }
  NK_CHECK_MSG(false, "ephemeral port space exhausted");
  return 0;
}

int TcpStack::RssCore(const FourTuple& tuple) const {
  return static_cast<int>(SymmetricFlowHash(tuple) % cores_.size());
}

int TcpStack::Connect(SocketId id, IpAddr dst_ip, uint16_t dst_port) {
  Sock* s = Find(id);
  if (s == nullptr) return kNotConnected;
  NK_CHECK(s->state == TcpState::kClosed);
  if (s->tuple.local_ip == 0) {
    s->tuple.local_ip = nic_ != nullptr ? nic_->ip() : 0;
  }
  if (s->tuple.local_port == 0) {
    s->tuple.local_port = AllocEphemeralPort();
  }
  s->tuple.remote_ip = dst_ip;
  s->tuple.remote_port = dst_port;
  s->core_idx = RssCore(s->tuple);
  s->iss = 1 + rng_.NextBounded(1u << 30);
  s->snd_una = s->iss;
  s->snd_nxt = s->iss + 1;
  s->state = TcpState::kSynSent;
  demux_[s->tuple] = id;

  // Connection setup cost: socket/ephemeral-port tables are shared in the
  // kernel profile and serialize across cores.
  ChargeWithSharedLock(s->core_idx, config_.profile.conn_setup, [this, id] {
    Sock* s2 = Find(id);
    if (s2 == nullptr || s2->state != TcpState::kSynSent) return;
    EmitSegment(*s2, kSyn, s2->iss, nullptr, 0);
    ArmRto(*s2);
  });
  return kOk;
}

SocketId TcpStack::Accept(SocketId listener) {
  Sock* l = Find(listener);
  if (l == nullptr || !l->listening || l->accept_q.empty()) return kInvalidSocket;
  SocketId child = l->accept_q.front();
  l->accept_q.pop_front();
  cores_[l->core_idx]->Reserve(config_.profile.conn_accept);
  return child;
}

uint64_t TcpStack::Send(SocketId id, const uint8_t* data, uint64_t n) {
  Sock* s = Find(id);
  if (s == nullptr) return 0;
  if (s->state != TcpState::kEstablished && s->state != TcpState::kCloseWait) return 0;
  uint64_t space = s->sndbuf_limit > s->sndbuf.size() ? s->sndbuf_limit - s->sndbuf.size() : 0;
  uint64_t take = std::min(space, n);
  if (take > 0) {
    s->sndbuf.Append(data, take);
    PumpTx(id);
  }
  return take;
}

bool TcpStack::SendZc(SocketId id, const uint8_t* data, uint32_t n,
                      std::function<void()> on_freed) {
  Sock* s = Find(id);
  if (s == nullptr || n == 0) return false;
  if (s->state != TcpState::kEstablished && s->state != TcpState::kCloseWait) return false;
  uint64_t space = s->sndbuf_limit > s->sndbuf.size() ? s->sndbuf_limit - s->sndbuf.size() : 0;
  if (space < n) return false;
  s->sndbuf.AppendExternal(data, n, std::move(on_freed));
  PumpTx(id);
  return true;
}

uint64_t TcpStack::Recv(SocketId id, uint8_t* out, uint64_t max) {
  Sock* s = Find(id);
  if (s == nullptr) return 0;
  uint64_t before = AdvertisedWindow(*s);
  uint64_t n = s->rcvbuf.ReadInto(out, max);
  if (n > 0) MaybeSendWindowUpdate(*s, before);
  return n;
}

void TcpStack::SetRxChunkAllocator(SocketId id, std::shared_ptr<ChunkAllocator> allocator) {
  Sock* s = Find(id);
  if (s == nullptr) return;
  // Installed on a listener, the allocator is inherited by accepted children
  // at SYN time, so even payload riding the handshake's final ACK lands in
  // pool chunks.
  s->rx_allocator = allocator;
  s->rcvbuf.SetChunkAllocator(std::move(allocator));
}

bool TcpStack::RxDetachable(SocketId id) const {
  const Sock* s = Find(id);
  return s != nullptr && s->rcvbuf.FrontDetachable();
}

bool TcpStack::RecvZcDetach(SocketId id, DetachedChunk* out) {
  Sock* s = Find(id);
  if (s == nullptr) return false;
  uint64_t before = AdvertisedWindow(*s);
  if (!s->rcvbuf.DetachFront(out)) return false;
  MaybeSendWindowUpdate(*s, before);
  return true;
}

uint64_t TcpStack::RxPoolFallbacks(SocketId id) const {
  const Sock* s = Find(id);
  return s == nullptr ? 0 : s->rcvbuf.pool_fallbacks();
}

void TcpStack::Close(SocketId id) {
  Sock* s = Find(id);
  if (s == nullptr) return;
  s->app_closed = true;
  if (s->listening) {
    auto& group = listeners_[s->tuple.local_port];
    group.erase(std::remove(group.begin(), group.end(), id), group.end());
    if (group.empty()) listeners_.erase(s->tuple.local_port);
    // Abort any accepted-but-unclaimed children.
    while (!s->accept_q.empty()) {
      SocketId child = s->accept_q.front();
      s->accept_q.pop_front();
      Abort(child);
    }
    DestroySock(id);
    return;
  }
  switch (s->state) {
    case TcpState::kClosed:
    case TcpState::kSynSent:
      DestroySock(id);
      break;
    case TcpState::kSynRcvd:
    case TcpState::kEstablished:
    case TcpState::kCloseWait:
      s->fin_pending = true;
      PumpTx(id);
      break;
    default:
      break;  // already closing
  }
}

void TcpStack::Abort(SocketId id) {
  Sock* s = Find(id);
  if (s == nullptr) return;
  if (s->state != TcpState::kClosed && s->state != TcpState::kListen &&
      s->state != TcpState::kSynSent) {
    SendRst(s->tuple, s->snd_nxt, s->rcv_nxt);
  }
  FreeTupleAndTeardown(*s);
  DestroySock(id);
}

void TcpStack::SetCallbacks(SocketId id, SocketCallbacks cbs) {
  Sock* s = Find(id);
  if (s != nullptr) s->cbs = std::move(cbs);
}

void TcpStack::SetCongestionControl(SocketId id, std::unique_ptr<CongestionControl> cc) {
  Sock* s = Find(id);
  if (s != nullptr) {
    bool established = s->state == TcpState::kEstablished;
    if (established && s->cc) s->cc->OnCloseConn();
    s->cc = std::move(cc);
    if (established) s->cc->OnConnect();
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

TcpState TcpStack::State(SocketId id) const {
  const Sock* s = Find(id);
  return s == nullptr ? TcpState::kClosed : s->state;
}

FourTuple TcpStack::Tuple(SocketId id) const {
  const Sock* s = Find(id);
  return s == nullptr ? FourTuple{} : s->tuple;
}

uint64_t TcpStack::SendBufSpace(SocketId id) const {
  const Sock* s = Find(id);
  if (s == nullptr) return 0;
  return s->sndbuf_limit > s->sndbuf.size() ? s->sndbuf_limit - s->sndbuf.size() : 0;
}

uint64_t TcpStack::RecvAvailable(SocketId id) const {
  const Sock* s = Find(id);
  return s == nullptr ? 0 : s->rcvbuf.size();
}

bool TcpStack::FinReceived(SocketId id) const {
  const Sock* s = Find(id);
  return s != nullptr && s->fin_rcvd && s->rcvbuf.empty();
}

bool TcpStack::HasPendingAccept(SocketId id) const {
  const Sock* s = Find(id);
  return s != nullptr && !s->accept_q.empty();
}

int TcpStack::SocketError(SocketId id) const {
  const Sock* s = Find(id);
  return s == nullptr ? kNotConnected : s->err;
}

int TcpStack::CoreIndex(SocketId id) const {
  const Sock* s = Find(id);
  return s == nullptr ? 0 : s->core_idx;
}

void TcpStack::ChargeOnSocketCore(SocketId id, Cycles cycles, std::function<void()> fn) {
  const Sock* s = Find(id);
  cores_[s == nullptr ? 0 : s->core_idx]->Charge(cycles, std::move(fn));
}

// ---------------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------------

uint64_t TcpStack::AdvertisedWindow(const Sock& s) const {
  uint64_t used = s.rcvbuf.size() + s.ooo_bytes;
  return s.rcvbuf_limit > used ? s.rcvbuf_limit - used : 0;
}

void TcpStack::EmitSegment(Sock& s, uint8_t flags, SeqNum seq, const uint8_t* payload,
                           uint32_t len, bool ece) {
  auto seg = std::make_shared<Segment>();
  seg->tuple = s.tuple;
  seg->flags = flags | (s.state != TcpState::kSynSent ? kAck : 0) | (ece ? kEce : 0);
  seg->seq = seq;
  seg->ack = (seg->flags & kAck) ? s.rcv_nxt : 0;
  seg->rwnd = AdvertisedWindow(s);
  seg->ts = loop_->Now();
  seg->ts_echo = s.last_rx_ts;
  if (len > 0) {
    seg->payload.assign(payload, payload + len);
  }
  s.last_advertised_wnd = seg->rwnd;

  netsim::Packet pkt;
  pkt.src = s.tuple.local_ip;
  pkt.dst = s.tuple.remote_ip;
  pkt.wire_bytes = WireBytes(len);
  pkt.protocol = netsim::Protocol::kTcp;
  pkt.ecn_capable = config_.ecn && len > 0;
  pkt.flow_hash = SymmetricFlowHash(s.tuple);
  pkt.payload = std::move(seg);
  ++stats_.segments_sent;
  stats_.bytes_sent += len;
  if (nic_ != nullptr) nic_->Transmit(std::move(pkt));
}

void TcpStack::SendAck(Sock& s, bool ece) { EmitSegment(s, kAck, s.snd_nxt, nullptr, 0, ece); }

void TcpStack::SendRst(const FourTuple& from_tuple, SeqNum seq, SeqNum ack) {
  auto seg = std::make_shared<Segment>();
  seg->tuple = from_tuple;
  seg->flags = kRst | kAck;
  seg->seq = seq;
  seg->ack = ack;
  netsim::Packet pkt;
  pkt.src = from_tuple.local_ip;
  pkt.dst = from_tuple.remote_ip;
  pkt.wire_bytes = WireBytes(0);
  pkt.protocol = netsim::Protocol::kTcp;
  pkt.flow_hash = SymmetricFlowHash(from_tuple);
  pkt.payload = std::move(seg);
  ++stats_.rsts_sent;
  if (nic_ != nullptr) nic_->Transmit(std::move(pkt));
}

void TcpStack::MaybeSendWindowUpdate(Sock& s, uint64_t before_window) {
  // Avoid silly-window deadlock: when the advertised window was nearly closed
  // and the application's read reopens it, proactively notify the sender.
  uint64_t now_window = AdvertisedWindow(s);
  if (before_window < kMss && now_window >= kMss && s.state != TcpState::kClosed &&
      s.state != TcpState::kListen && s.state != TcpState::kSynSent) {
    SendAck(s, false);
  }
}

void TcpStack::PumpTx(SocketId id) {
  Sock* s = Find(id);
  if (s == nullptr || s->tx_charge_pending) return;
  if (s->state != TcpState::kEstablished && s->state != TcpState::kCloseWait &&
      s->state != TcpState::kFinWait1 && s->state != TcpState::kLastAck) {
    return;
  }
  uint64_t inflight = s->snd_nxt - s->snd_una - (s->fin_sent ? 1 : 0);
  uint64_t unsent = s->sndbuf.size() - inflight;
  if (unsent == 0) {
    MaybeSendFin(*s);
    return;
  }
  uint64_t wnd = std::min<uint64_t>(s->cc->Window(), s->peer_rwnd);
  if (wnd <= inflight) {
    if (s->peer_rwnd == 0) ArmPersist(*s);
    return;
  }
  if (s->tsq_outstanding >= config_.profile.tsq_limit_bytes) {
    return;  // resumed by the TX-completion callback
  }
  // Nagle + GSO tail coalescing: while data is unacknowledged, small writes
  // accumulate into a full TSO chunk (sent at once on the next ACK or when
  // kTsoChunk bytes are buffered). This is what lets a saturated core emit
  // 64 KB chunks regardless of the application's write size.
  if (inflight > 0 && unsent < kTsoChunk && !s->fin_pending) {
    return;  // re-pumped by the next Send() or ACK
  }
  s->tx_charge_pending = true;
  // Two-phase transmit: the chunk is sized when the core actually services
  // this item, so bytes the application writes in the meantime coalesce into
  // one TSO chunk (Linux autocorking). Phase 1 costs nothing; phase 2 charges
  // the per-chunk cost and emits.
  cores_[s->core_idx]->Charge(0, [this, id] {
    Sock* s2 = Find(id);
    if (s2 == nullptr) return;
    if (s2->state == TcpState::kClosed || s2->state == TcpState::kListen) {
      s2->tx_charge_pending = false;
      return;
    }
    uint64_t inflight2 = s2->snd_nxt - s2->snd_una - (s2->fin_sent ? 1 : 0);
    uint64_t unsent2 = s2->sndbuf.size() - inflight2;
    uint64_t wnd2 = std::min<uint64_t>(s2->cc->Window(), s2->peer_rwnd);
    uint64_t window_room = wnd2 > inflight2 ? wnd2 - inflight2 : 0;
    uint64_t tsq_room = config_.profile.tsq_limit_bytes > s2->tsq_outstanding
                            ? config_.profile.tsq_limit_bytes - s2->tsq_outstanding
                            : 0;
    if (inflight2 > 0 && unsent2 < kTsoChunk && !s2->fin_pending) {
      s2->tx_charge_pending = false;  // keep coalescing (Nagle)
      return;
    }
    uint32_t chunk = static_cast<uint32_t>(
        std::min<uint64_t>({kTsoChunk, unsent2, window_room, tsq_room}));
    if (chunk == 0) {
      s2->tx_charge_pending = false;
      if (unsent2 == 0) MaybeSendFin(*s2);
      if (s2->peer_rwnd == 0 && unsent2 > 0) ArmPersist(*s2);
      return;
    }
    const CostProfile& p = config_.profile;
    Cycles cost = p.tx_fixed_per_chunk + p.tx_per_seg * SegCount(chunk) +
                  static_cast<Cycles>(p.tx_per_byte * chunk);
    cores_[s2->core_idx]->Charge(cost, [this, id, chunk] {
      Sock* s3 = Find(id);
      if (s3 == nullptr) return;
      s3->tx_charge_pending = false;
      if (s3->state == TcpState::kClosed || s3->state == TcpState::kListen) return;
      uint64_t inflight3 = s3->snd_nxt - s3->snd_una - (s3->fin_sent ? 1 : 0);
      uint64_t unsent3 = s3->sndbuf.size() - inflight3;
      uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(chunk, unsent3));
      if (len > 0) {
        std::vector<uint8_t> data(len);
        s3->sndbuf.CopyOut(inflight3, len, data.data());
        EmitSegment(*s3, kAck, s3->snd_nxt, data.data(), len);
        s3->snd_nxt += len;
        ArmRto(*s3);
        // TSQ: hold the socket's qdisc occupancy until the (coalesced) TX
        // completion fires.
        s3->tsq_outstanding += len;
        SimTime completion = TransmitTime(WireBytes(len), config_.nic_rate_hint) +
                             config_.profile.tx_completion_delay;
        loop_->ScheduleAfter(completion, [this, id, len] {
          Sock* s4 = Find(id);
          if (s4 == nullptr) return;
          s4->tsq_outstanding = s4->tsq_outstanding > len ? s4->tsq_outstanding - len : 0;
          PumpTx(id);
        });
      }
      PumpTx(id);
    });
  });
}

void TcpStack::MaybeSendFin(Sock& s) {
  if (!s.fin_pending || s.fin_sent) return;
  uint64_t inflight = s.snd_nxt - s.snd_una;
  if (s.sndbuf.size() > inflight) return;  // unsent data remains
  s.fin_sent = true;
  EmitSegment(s, kFin | kAck, s.snd_nxt, nullptr, 0);
  s.snd_nxt += 1;
  ArmRto(s);
  if (s.state == TcpState::kEstablished || s.state == TcpState::kSynRcvd) {
    s.state = TcpState::kFinWait1;
  } else if (s.state == TcpState::kCloseWait) {
    s.state = TcpState::kLastAck;
  }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void TcpStack::ArmRto(Sock& s) {
  s.rto_timer.Cancel();
  SocketId id = s.id;
  s.rto_timer = loop_->ScheduleAfter(s.rto, [this, id] { OnRto(id); });
}

void TcpStack::CancelRto(Sock& s) { s.rto_timer.Cancel(); }

void TcpStack::UpdateRtt(Sock& s, SimTime rtt) {
  if (rtt <= 0) return;
  if (s.srtt == 0) {
    s.srtt = rtt;
    s.rttvar = rtt / 2;
  } else {
    SimTime err = rtt > s.srtt ? rtt - s.srtt : s.srtt - rtt;
    s.rttvar = (3 * s.rttvar + err) / 4;
    s.srtt = (7 * s.srtt + rtt) / 8;
  }
  s.rto = std::max(config_.min_rto, s.srtt + 4 * s.rttvar);
  if (s.rto > kMaxRto) s.rto = kMaxRto;
}

void TcpStack::OnRto(SocketId id) {
  Sock* s = Find(id);
  if (s == nullptr) return;
  ++stats_.rto_fires;

  if (s->state == TcpState::kSynSent) {
    if (++s->dupacks > kMaxSynRetries) {  // dupacks reused as retry counter
      FailConnection(*s, kTimedOut);
      return;
    }
    EmitSegment(*s, kSyn, s->iss, nullptr, 0);
    s->rto = std::min(s->rto * 2, kMaxRto);
    ArmRto(*s);
    return;
  }
  if (s->state == TcpState::kSynRcvd) {
    if (++s->dupacks > kMaxSynRetries) {
      FailConnection(*s, kTimedOut);
      return;
    }
    EmitSegment(*s, kSyn | kAck, s->iss, nullptr, 0);
    s->rto = std::min(s->rto * 2, kMaxRto);
    ArmRto(*s);
    return;
  }

  uint64_t inflight_data = s->snd_nxt - s->snd_una - (s->fin_sent ? 1 : 0);
  if (inflight_data == 0 && !s->fin_sent) return;

  s->cc->OnTimeout();
  s->recovery_end = s->snd_nxt;
  s->rto = std::min(s->rto * 2, kMaxRto);
  ++stats_.retransmits;

  if (inflight_data > 0) {
    uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(kTsoChunk, inflight_data));
    const CostProfile& p = config_.profile;
    Cycles cost = p.tx_fixed_per_chunk + p.tx_per_seg * SegCount(len) +
                  static_cast<Cycles>(p.tx_per_byte * len);
    SeqNum seq = s->snd_una;
    cores_[s->core_idx]->Charge(cost, [this, id, seq, len] {
      Sock* s2 = Find(id);
      if (s2 == nullptr || seq < s2->snd_una) return;  // already acked meanwhile
      uint32_t len2 = static_cast<uint32_t>(
          std::min<uint64_t>(len, s2->sndbuf.size()));
      if (len2 == 0) return;
      std::vector<uint8_t> data(len2);
      s2->sndbuf.CopyOut(0, len2, data.data());
      EmitSegment(*s2, kAck, s2->snd_una, data.data(), len2);
    });
  } else {
    // Only the FIN is outstanding.
    EmitSegment(*s, kFin | kAck, s->snd_nxt - 1, nullptr, 0);
  }
  ArmRto(*s);
}

void TcpStack::ArmPersist(Sock& s) {
  if (s.persist_timer.Pending()) return;
  SocketId id = s.id;
  SimTime delay = std::max<SimTime>(s.rto, 10 * kMillisecond);
  s.persist_timer = loop_->ScheduleAfter(delay, [this, id] { OnPersist(id); });
}

void TcpStack::OnPersist(SocketId id) {
  Sock* s = Find(id);
  if (s == nullptr) return;
  if (s->peer_rwnd == 0 && !s->sndbuf.empty()) {
    SendAck(*s, false);  // window probe
    ArmPersist(*s);
  }
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void TcpStack::OnNicRxNotify() { ScheduleRxDrain(config_.profile.rx_coalesce_delay); }

void TcpStack::ScheduleRxDrain(SimTime delay) {
  if (rx_drain_scheduled_) return;
  rx_drain_scheduled_ = true;
  loop_->ScheduleAfter(delay, [this] { DrainRx(); });
}

void TcpStack::DrainRx() {
  rx_drain_scheduled_ = false;
  std::vector<netsim::Packet> pkts(static_cast<size_t>(config_.rx_batch));
  size_t n = nic_->DrainRx(pkts.data(), pkts.size());
  if (n == 0) return;

  struct Batch {
    Cycles cost = 0;
    std::vector<std::pair<SegmentPtr, bool>> segs;
  };
  std::vector<Batch> batches(cores_.size());
  const CostProfile& p = config_.profile;
  const SimTime now = loop_->Now();

  for (size_t i = 0; i < n; ++i) {
    if (pkts[i].protocol != netsim::Protocol::kTcp) {
      // IP-protocol demux: the softirq hands non-TCP packets (UDP) to the
      // registered sibling stack sharing this NIC.
      if (raw_packet_handler_) raw_packet_handler_(std::move(pkts[i]));
      continue;
    }
    auto seg = std::static_pointer_cast<const Segment>(pkts[i].payload);
    if (!seg) continue;
    int cidx = static_cast<int>(pkts[i].flow_hash % cores_.size());
    // NIC-ring overflow: the owning core is hopelessly backlogged.
    if (cores_[cidx]->IdleAt() - now > config_.rx_backlog_cap) {
      ++stats_.rx_ring_drops;
      continue;
    }
    Batch& b = batches[cidx];
    uint32_t len = static_cast<uint32_t>(seg->payload.size());
    if (len > 0) {
      b.cost += p.rx_per_seg * SegCount(len) + static_cast<Cycles>(p.rx_per_byte * len);
    } else {
      b.cost += p.rx_per_ack;
    }
    b.segs.emplace_back(std::move(seg), pkts[i].ce_marked);
  }

  for (size_t c = 0; c < batches.size(); ++c) {
    if (batches[c].segs.empty()) continue;
    Cycles cost = batches[c].cost + p.rx_irq_fixed;
    cores_[c]->Charge(cost, [this, segs = std::move(batches[c].segs)] {
      for (const auto& [seg, ce] : segs) {
        ++stats_.segments_received;
        HandleSegment(*seg, ce);
      }
    });
  }

  if (nic_->RxPending() > 0) ScheduleRxDrain(p.rx_coalesce_delay);
}

void TcpStack::HandleSegment(const Segment& seg, bool ce_marked) {
  FourTuple local_tuple = Invert(seg.tuple);
  auto it = demux_.find(local_tuple);
  if (it == demux_.end()) {
    if (seg.Has(kSyn) && !seg.Has(kAck)) {
      HandleSynAtListener(seg, ce_marked);
    } else if (!seg.Has(kRst)) {
      SendRst(local_tuple, seg.ack, seg.seq + seg.payload.size());
    }
    return;
  }
  Sock* s = Find(it->second);
  if (s == nullptr) {
    demux_.erase(it);
    return;
  }

  if (seg.Has(kRst)) {
    int err = s->state == TcpState::kSynSent ? kConnRefused : kConnReset;
    FailConnection(*s, err);
    return;
  }
  if (seg.ts > 0) s->last_rx_ts = seg.ts;

  switch (s->state) {
    case TcpState::kSynSent: {
      if (seg.Has(kSyn) && seg.Has(kAck) && seg.ack == s->iss + 1) {
        s->snd_una = seg.ack;
        s->irs = seg.seq;
        s->rcv_nxt = seg.seq + 1;
        s->peer_rwnd = seg.rwnd;
        s->dupacks = 0;
        s->state = TcpState::kEstablished;
        CancelRto(*s);
        UpdateRtt(*s, loop_->Now() - seg.ts_echo);
        SendAck(*s, false);
        s->cc->OnConnect();
        ++stats_.conns_established;
        if (s->cbs.on_connect) s->cbs.on_connect(0);
        PumpTx(s->id);
      }
      return;
    }
    case TcpState::kSynRcvd: {
      if (seg.Has(kAck) && seg.ack == s->iss + 1) {
        s->snd_una = seg.ack;
        s->peer_rwnd = seg.rwnd;
        s->dupacks = 0;
        CancelRto(*s);
        EstablishChild(*s);
        // Fall through to data handling if the ACK carried payload.
        if (!seg.payload.empty()) HandleEstablishedData(*s, seg, ce_marked);
      }
      return;
    }
    case TcpState::kTimeWait: {
      if (seg.Has(kFin)) SendAck(*s, false);  // peer retransmitted its FIN
      return;
    }
    case TcpState::kClosed:
    case TcpState::kListen:
      return;
    default:
      HandleEstablishedData(*s, seg, ce_marked);
      return;
  }
}

void TcpStack::HandleSynAtListener(const Segment& seg, bool ce_marked) {
  FourTuple local_tuple = Invert(seg.tuple);
  auto lit = listeners_.find(local_tuple.local_port);
  if (lit == listeners_.end() || lit->second.empty()) {
    SendRst(local_tuple, 0, seg.seq + 1);
    return;
  }
  // SO_REUSEPORT: pick the group member by flow hash.
  auto& group = lit->second;
  SocketId lid = group[SymmetricFlowHash(local_tuple) % group.size()];
  Sock* l = Find(lid);
  if (l == nullptr) return;
  if (static_cast<int>(l->accept_q.size()) + l->pending_children >= l->backlog) {
    return;  // accept queue full: drop the SYN, client retries
  }

  SocketId cid = CreateSocket();
  Sock& c = MustFind(cid);
  if (l->rx_allocator != nullptr) {
    c.rx_allocator = l->rx_allocator;
    c.rcvbuf.SetChunkAllocator(l->rx_allocator);
  }
  c.tuple = local_tuple;
  c.core_idx = l->reuseport && config_.per_core_tables ? l->core_idx : RssCore(c.tuple);
  c.parent = lid;
  c.state = TcpState::kSynRcvd;
  c.iss = 1 + rng_.NextBounded(1u << 30);
  c.snd_una = c.iss;
  c.snd_nxt = c.iss + 1;
  c.irs = seg.seq;
  c.rcv_nxt = seg.seq + 1;
  c.peer_rwnd = seg.rwnd;
  c.last_rx_ts = seg.ts;
  demux_[c.tuple] = cid;
  ++l->pending_children;

  ChargeWithSharedLock(c.core_idx, config_.profile.conn_setup, [this, cid] {
    Sock* c2 = Find(cid);
    if (c2 == nullptr || c2->state != TcpState::kSynRcvd) return;
    EmitSegment(*c2, kSyn | kAck, c2->iss, nullptr, 0);
    ArmRto(*c2);
  });
}

void TcpStack::EstablishChild(Sock& child) {
  child.state = TcpState::kEstablished;
  child.cc->OnConnect();
  ++stats_.conns_established;
  UpdateRtt(child, loop_->Now() - child.last_rx_ts);
  Sock* l = Find(child.parent);
  if (l == nullptr || !l->listening) {
    Abort(child.id);
    return;
  }
  if (l->pending_children > 0) --l->pending_children;
  l->accept_q.push_back(child.id);
  if (l->cbs.on_acceptable) l->cbs.on_acceptable();
}

void TcpStack::HandleEstablishedData(Sock& s, const Segment& seg, bool ce_marked) {
  if (seg.Has(kAck)) HandleAck(s, seg);
  // `s` may have been destroyed by a terminal ACK (e.g. LAST_ACK -> CLOSED);
  // re-validate before touching receive state.
  Sock* alive = Find(DemuxLookupAfterAck(seg));
  if (alive == nullptr) return;
  Sock& s2 = *alive;

  uint32_t len = static_cast<uint32_t>(seg.payload.size());
  bool advanced = false;

  if (len > 0) {
    SeqNum seq = seg.seq;
    const uint8_t* data = seg.payload.data();
    uint32_t remaining = len;
    if (seq + remaining <= s2.rcv_nxt) {
      // Entirely duplicate: re-ACK.
      SendAck(s2, ce_marked);
      return;
    }
    if (seq < s2.rcv_nxt) {
      uint32_t trim = static_cast<uint32_t>(s2.rcv_nxt - seq);
      data += trim;
      remaining -= trim;
      seq = s2.rcv_nxt;
    }
    if (seq == s2.rcv_nxt) {
      s2.rcvbuf.Append(data, remaining);
      s2.rcv_nxt += remaining;
      stats_.bytes_received += remaining;
      advanced = true;
      // Absorb contiguous out-of-order segments.
      while (!s2.ooo.empty()) {
        auto oit = s2.ooo.begin();
        if (oit->first > s2.rcv_nxt) break;
        SeqNum oseq = oit->first;
        std::vector<uint8_t>& opay = oit->second;
        if (oseq + opay.size() > s2.rcv_nxt) {
          uint64_t trim = s2.rcv_nxt - oseq;
          uint64_t keep = opay.size() - trim;
          s2.rcvbuf.Append(opay.data() + trim, keep);
          s2.rcv_nxt += keep;
          stats_.bytes_received += keep;
        }
        s2.ooo_bytes -= opay.size();
        s2.ooo.erase(oit);
      }
    } else {
      // Out of order: hold for reassembly, send a duplicate ACK.
      if (s2.ooo.count(seq) == 0) {
        s2.ooo_bytes += remaining;
        s2.ooo.emplace(seq, std::vector<uint8_t>(data, data + remaining));
      }
      SendAck(s2, false);
      return;
    }
  }

  // FIN processing once the stream is caught up.
  if (seg.Has(kFin) && !s2.fin_rcvd) {
    SeqNum fin_seq = seg.seq + len;
    if (fin_seq == s2.rcv_nxt) {
      s2.fin_rcvd = true;
      s2.rcv_nxt += 1;
      advanced = true;
      switch (s2.state) {
        case TcpState::kEstablished:
          s2.state = TcpState::kCloseWait;
          break;
        case TcpState::kFinWait1:
          s2.state = TcpState::kClosing;  // simultaneous close
          break;
        case TcpState::kFinWait2: {
          SendAck(s2, false);
          // EnterTimeWait destroys the sock outright when time_wait <= 0;
          // the EOF notification must run off a copy, not the dead sock.
          std::function<void()> on_readable = s2.cbs.on_readable;
          EnterTimeWait(s2);
          if (on_readable) on_readable();
          return;
        }
        default:
          break;
      }
    }
  }

  if (advanced) {
    SendAck(s2, ce_marked);
    if (s2.cbs.on_readable) s2.cbs.on_readable();
  }
}

// Looks the socket back up after ACK processing may have destroyed it.
SocketId TcpStack::DemuxLookupAfterAck(const Segment& seg) {
  auto it = demux_.find(Invert(seg.tuple));
  return it == demux_.end() ? kInvalidSocket : it->second;
}

void TcpStack::HandleAck(Sock& s, const Segment& seg) {
  s.peer_rwnd = seg.rwnd;
  if (seg.ack > s.snd_una && seg.ack <= s.snd_nxt) {
    uint64_t acked = seg.ack - s.snd_una;
    uint64_t data_acked = acked;
    if (s.fin_sent && seg.ack == s.snd_nxt) data_acked -= 1;  // FIN consumed one
    if (data_acked > s.sndbuf.size()) data_acked = s.sndbuf.size();
    s.sndbuf.Drop(data_acked);
    s.snd_una = seg.ack;
    s.dupacks = 0;
    if (seg.ts_echo > 0) UpdateRtt(s, loop_->Now() - seg.ts_echo);
    s.cc->OnAck(acked, s.srtt, seg.Has(kEce));

    bool fin_acked = s.fin_sent && s.snd_una == s.snd_nxt;
    if (s.snd_una == s.snd_nxt) {
      CancelRto(s);
    } else {
      ArmRto(s);
    }
    if (fin_acked) {
      // OnFinAcked can destroy the sock (LAST_ACK -> CLOSED): the id must be
      // read before the call, not from possibly-freed memory after it.
      SocketId sid = s.id;
      OnFinAcked(s);
      if (Find(sid) == nullptr) return;
    }
    if (data_acked > 0 && !s.app_closed && s.cbs.on_writable) s.cbs.on_writable();
    PumpTx(s.id);
  } else if (seg.ack == s.snd_una && seg.payload.empty() && !seg.Has(kSyn) && !seg.Has(kFin) &&
             s.snd_nxt != s.snd_una) {
    if (++s.dupacks == 3 && s.snd_una >= s.recovery_end) {
      // Fast retransmit + NewReno-style recovery.
      ++stats_.fast_retransmits;
      ++stats_.retransmits;
      s.cc->OnLoss();
      s.recovery_end = s.snd_nxt;
      uint64_t inflight_data = s.snd_nxt - s.snd_una - (s.fin_sent ? 1 : 0);
      uint32_t len = static_cast<uint32_t>(
          std::min<uint64_t>({kTsoChunk, inflight_data, s.sndbuf.size()}));
      if (len > 0) {
        SocketId id = s.id;
        SeqNum seq = s.snd_una;
        const CostProfile& p = config_.profile;
        Cycles cost = p.tx_fixed_per_chunk + p.tx_per_seg * SegCount(len) +
                      static_cast<Cycles>(p.tx_per_byte * len);
        cores_[s.core_idx]->Charge(cost, [this, id, seq, len] {
          Sock* s2 = Find(id);
          if (s2 == nullptr || seq < s2->snd_una) return;
          uint32_t len2 =
              static_cast<uint32_t>(std::min<uint64_t>(len, s2->sndbuf.size()));
          if (len2 == 0) return;
          std::vector<uint8_t> data(len2);
          s2->sndbuf.CopyOut(0, len2, data.data());
          EmitSegment(*s2, kAck, s2->snd_una, data.data(), len2);
        });
      }
    }
  }
  if (s.peer_rwnd > 0 && s.persist_timer.Pending()) {
    s.persist_timer.Cancel();
    PumpTx(s.id);
  }
}

// ---------------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------------

void TcpStack::OnFinAcked(Sock& s) {
  switch (s.state) {
    case TcpState::kFinWait1:
      s.state = s.fin_rcvd ? TcpState::kTimeWait : TcpState::kFinWait2;
      if (s.state == TcpState::kTimeWait) EnterTimeWait(s);
      break;
    case TcpState::kClosing:
      EnterTimeWait(s);
      break;
    case TcpState::kLastAck:
      FreeTupleAndTeardown(s);
      DestroySock(s.id);
      break;
    default:
      break;
  }
}

void TcpStack::EnterTimeWait(Sock& s) {
  s.state = TcpState::kTimeWait;
  if (config_.time_wait <= 0) {
    FreeTupleAndTeardown(s);
    DestroySock(s.id);
    return;
  }
  SocketId id = s.id;
  s.time_wait_timer = loop_->ScheduleAfter(config_.time_wait, [this, id] {
    Sock* s2 = Find(id);
    if (s2 == nullptr) return;
    FreeTupleAndTeardown(*s2);
    DestroySock(id);
  });
}

void TcpStack::FreeTupleAndTeardown(Sock& s) {
  if (s.tuple.remote_ip != 0 || s.tuple.remote_port != 0) {
    demux_.erase(s.tuple);
  }
  ++stats_.conns_closed;
  if (s.state == TcpState::kEstablished || s.state == TcpState::kFinWait1 ||
      s.state == TcpState::kFinWait2 || s.state == TcpState::kCloseWait ||
      s.state == TcpState::kClosing || s.state == TcpState::kLastAck ||
      s.state == TcpState::kTimeWait) {
    s.cc->OnCloseConn();
  }
  // Socket free + port-table release.
  ChargeWithSharedLock(s.core_idx, config_.profile.conn_teardown, [] {});
  s.state = TcpState::kClosed;
}

void TcpStack::FailConnection(Sock& s, int err) {
  s.err = err;
  bool was_syn_sent = s.state == TcpState::kSynSent;
  FreeTupleAndTeardown(s);
  auto on_connect = s.cbs.on_connect;
  auto on_error = s.cbs.on_error;
  DestroySock(s.id);
  if (was_syn_sent && on_connect) {
    on_connect(err);
  } else if (on_error) {
    on_error(err);
  }
}

void TcpStack::DestroySock(SocketId id) {
  Sock* s = Find(id);
  if (s == nullptr) return;
  s->rto_timer.Cancel();
  s->persist_timer.Cancel();
  s->time_wait_timer.Cancel();
  if (s->tuple.remote_ip != 0 || s->tuple.remote_port != 0) {
    auto it = demux_.find(s->tuple);
    if (it != demux_.end() && it->second == id) demux_.erase(it);
  }
  socks_.erase(id);
}

void TcpStack::ChargeWithSharedLock(int core_idx, Cycles work, std::function<void()> fn) {
  if (config_.per_core_tables) {
    cores_[core_idx]->Charge(work + config_.profile.shared_lock_hold, std::move(fn));
    return;
  }
  table_lock_.Acquire(cores_[core_idx], config_.profile.shared_lock_hold);
  cores_[core_idx]->Charge(work, std::move(fn));
}

}  // namespace netkernel::tcp
