// Copyright (c) NetKernel reproduction authors.
// Chunked byte FIFO used for socket send/receive buffers. Supports random
// access reads relative to the front (needed for TCP retransmission) and
// amortized O(1) append/drop.
//
// Chunks are either owned (the classic copy-in path) or external: a borrowed
// byte range appended by reference for the zero-copy datapath. An external
// chunk carries a free callback that fires exactly once, when the buffer is
// done with the bytes — fully dropped from the front (i.e. ACKed, for a TCP
// send buffer), cleared, or destroyed with the buffer. Until then the bytes
// must stay valid: retransmissions read them in place via CopyOut.
//
// The receive-side zero-copy datapath adds a third flavor: a pluggable
// ChunkAllocator (the NSM installs one backed by the VM's hugepage pool) makes
// Append land incoming bytes directly into allocator-owned chunks. Successive
// appends tail-pack into the open chunk; the front chunk can then be
// *detached* — ownership (the allocator handle) transfers to the caller
// without copying and without firing the free callback, which is how
// ServiceLib ships a received chunk to the guest as-is. When the allocator is
// exhausted, Append falls back to an owned heap chunk (counted), which the
// caller must move with a copy as before.

#ifndef SRC_TCPSTACK_BYTE_BUFFER_H_
#define SRC_TCPSTACK_BYTE_BUFFER_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace netkernel::tcp {

// Pluggable chunk source for receive buffers (and any other consumer that
// wants pool-backed storage, e.g. UdpStack's datagram queues). `alloc` returns
// false when the backing region is exhausted — the caller falls back to heap
// memory. `capacity` may exceed the requested size (size-class rounding);
// the extra space is used for tail-packing later appends.
struct ChunkAllocator {
  // size -> (handle, writable data pointer, usable capacity).
  std::function<bool(uint32_t size, uint64_t* handle, uint8_t** data, uint32_t* capacity)>
      alloc;
  std::function<void(uint64_t handle)> free;
};

// An allocator-backed chunk detached from the front of a ByteBuffer: the
// caller now owns `handle` (the free callback will NOT fire).
struct DetachedChunk {
  uint64_t handle = 0;
  uint32_t size = 0;  // valid bytes
};

class ByteBuffer {
 public:
  ByteBuffer() = default;
  ByteBuffer(const ByteBuffer&) = delete;
  ByteBuffer& operator=(const ByteBuffer&) = delete;
  ~ByteBuffer() { Clear(); }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Installs (or clears) the allocator future Append calls draw chunks from.
  // Typically set once, right after socket creation, before data arrives.
  void SetChunkAllocator(std::shared_ptr<ChunkAllocator> allocator) {
    allocator_ = std::move(allocator);
  }
  bool has_chunk_allocator() const { return allocator_ != nullptr; }
  // Appends that could not get an allocator chunk and fell back to heap.
  uint64_t pool_fallbacks() const { return pool_fallbacks_; }

  void Append(const uint8_t* data, uint64_t n) {
    if (n == 0) return;
    if (allocator_ == nullptr) {
      Chunk c;
      c.owned.assign(data, data + n);
      chunks_.push_back(std::move(c));
      size_ += n;
      return;
    }
    AppendPooled(data, n);
  }

  void Append(std::vector<uint8_t> chunk) {
    if (chunk.empty()) return;
    size_ += chunk.size();
    Chunk c;
    c.owned = std::move(chunk);
    chunks_.push_back(std::move(c));
  }

  // Appends `n` bytes by reference (zero-copy). `on_free` fires exactly once,
  // when the range is fully consumed (dropped past), cleared, or the buffer
  // is destroyed; the bytes must remain valid until then.
  void AppendExternal(const uint8_t* data, uint64_t n, std::function<void()> on_free) {
    NK_CHECK(n > 0);
    Chunk c;
    c.ext = data;
    c.ext_len = n;
    c.on_free = std::move(on_free);
    chunks_.push_back(std::move(c));
    size_ += n;
  }

  // True when the front chunk is allocator-backed and no byte of it has been
  // consumed — i.e. it can be handed off whole, by reference.
  bool FrontDetachable() const {
    return head_offset_ == 0 && !chunks_.empty() && chunks_.front().pooled;
  }

  // Transfers ownership of the front chunk's allocator handle to the caller:
  // the bytes leave the buffer without a copy and the chunk's free callback
  // is disarmed (the caller frees the handle when done). Fails when the front
  // chunk is heap-backed or partially consumed — ship those with a copy.
  bool DetachFront(DetachedChunk* out) {
    if (!FrontDetachable()) return false;
    Chunk c = std::move(chunks_.front());
    chunks_.pop_front();
    size_ -= c.ext_len;
    out->handle = c.handle;
    out->size = static_cast<uint32_t>(c.ext_len);
    c.on_free = nullptr;  // ownership moved: Release() must not free it
    return true;
  }

  // Copies `n` bytes starting `offset` bytes from the front into `out`.
  // Requires offset + n <= size().
  void CopyOut(uint64_t offset, uint64_t n, uint8_t* out) const {
    NK_CHECK(offset + n <= size_);
    uint64_t skip = head_offset_ + offset;
    size_t ci = 0;
    while (skip >= chunks_[ci].size()) {
      skip -= chunks_[ci].size();
      ++ci;
    }
    uint64_t copied = 0;
    while (copied < n) {
      const Chunk& c = chunks_[ci];
      uint64_t avail = c.size() - skip;
      uint64_t take = n - copied < avail ? n - copied : avail;
      std::memcpy(out + copied, c.data() + skip, take);
      copied += take;
      skip = 0;
      ++ci;
    }
  }

  // Removes `n` bytes from the front, firing free callbacks of external
  // chunks that are fully passed.
  void Drop(uint64_t n) {
    NK_CHECK(n <= size_);
    size_ -= n;
    head_offset_ += n;
    while (!chunks_.empty() && head_offset_ >= chunks_.front().size()) {
      head_offset_ -= chunks_.front().size();
      Chunk c = std::move(chunks_.front());
      chunks_.pop_front();
      c.Release();  // may run arbitrary code; chunk already detached
    }
  }

  // Reads (copies + removes) up to `max` bytes from the front. Returns count.
  uint64_t ReadInto(uint8_t* out, uint64_t max) {
    uint64_t n = max < size_ ? max : size_;
    if (n > 0) {
      CopyOut(0, n, out);
      Drop(n);
    }
    return n;
  }

  void Clear() {
    std::deque<Chunk> doomed;
    doomed.swap(chunks_);
    size_ = 0;
    head_offset_ = 0;
    for (Chunk& c : doomed) c.Release();
  }

 private:
  struct Chunk {
    std::vector<uint8_t> owned;
    const uint8_t* ext = nullptr;  // external range (owned is empty then)
    uint64_t ext_len = 0;
    std::function<void()> on_free;
    // Allocator-backed chunk state: handle for detach/free, writable pointer
    // and capacity for tail-packing later appends.
    bool pooled = false;
    uint64_t handle = 0;
    uint8_t* wdata = nullptr;
    uint32_t cap = 0;

    Chunk() = default;
    Chunk(Chunk&& o) noexcept
        : owned(std::move(o.owned)),
          ext(std::exchange(o.ext, nullptr)),
          ext_len(std::exchange(o.ext_len, 0)),
          on_free(std::exchange(o.on_free, nullptr)),
          pooled(std::exchange(o.pooled, false)),
          handle(std::exchange(o.handle, 0)),
          wdata(std::exchange(o.wdata, nullptr)),
          cap(std::exchange(o.cap, 0)) {}
    Chunk& operator=(Chunk&& o) noexcept {
      if (this != &o) {
        Release();
        owned = std::move(o.owned);
        ext = std::exchange(o.ext, nullptr);
        ext_len = std::exchange(o.ext_len, 0);
        on_free = std::exchange(o.on_free, nullptr);
        pooled = std::exchange(o.pooled, false);
        handle = std::exchange(o.handle, 0);
        wdata = std::exchange(o.wdata, nullptr);
        cap = std::exchange(o.cap, 0);
      }
      return *this;
    }
    Chunk(const Chunk&) = delete;
    Chunk& operator=(const Chunk&) = delete;
    ~Chunk() { Release(); }

    void Release() {
      if (on_free) std::exchange(on_free, nullptr)();
    }
    const uint8_t* data() const { return ext != nullptr ? ext : owned.data(); }
    uint64_t size() const { return ext != nullptr ? ext_len : owned.size(); }
  };

  // Allocator path of Append: tail-pack into the open pooled chunk, then
  // draw fresh chunks; heap fallback (counted) when the allocator is dry.
  void AppendPooled(const uint8_t* data, uint64_t n) {
    uint64_t off = 0;
    if (!chunks_.empty()) {
      Chunk& tail = chunks_.back();
      if (tail.pooled && tail.ext_len < tail.cap) {
        uint64_t take = std::min<uint64_t>(n, tail.cap - tail.ext_len);
        std::memcpy(tail.wdata + tail.ext_len, data, take);
        tail.ext_len += take;
        size_ += take;
        off += take;
      }
    }
    while (off < n) {
      uint64_t handle = 0;
      uint8_t* wdata = nullptr;
      uint32_t cap = 0;
      uint32_t want = static_cast<uint32_t>(std::min<uint64_t>(n - off, 0xffffffffu));
      if (!allocator_->alloc(want, &handle, &wdata, &cap) || cap == 0) {
        // Pool exhausted: the rest lands on the heap; the consumer ships it
        // with a copy (the pre-zerocopy behaviour), so no data is lost.
        ++pool_fallbacks_;
        Chunk c;
        c.owned.assign(data + off, data + n);
        chunks_.push_back(std::move(c));
        size_ += n - off;
        return;
      }
      uint64_t take = std::min<uint64_t>(n - off, cap);
      std::memcpy(wdata, data + off, take);
      Chunk c;
      c.pooled = true;
      c.handle = handle;
      c.wdata = wdata;
      c.ext = wdata;
      c.cap = cap;
      c.ext_len = take;
      c.on_free = [allocator = allocator_, handle] { allocator->free(handle); };
      chunks_.push_back(std::move(c));
      size_ += take;
      off += take;
    }
  }

  std::deque<Chunk> chunks_;
  uint64_t size_ = 0;
  uint64_t head_offset_ = 0;  // bytes of chunks_.front() already consumed
  std::shared_ptr<ChunkAllocator> allocator_;
  uint64_t pool_fallbacks_ = 0;
};

}  // namespace netkernel::tcp

#endif  // SRC_TCPSTACK_BYTE_BUFFER_H_
