// Copyright (c) NetKernel reproduction authors.
// Chunked byte FIFO used for socket send/receive buffers. Supports random
// access reads relative to the front (needed for TCP retransmission) and
// amortized O(1) append/drop.
//
// Chunks are either owned (the classic copy-in path) or external: a borrowed
// byte range appended by reference for the zero-copy datapath. An external
// chunk carries a free callback that fires exactly once, when the buffer is
// done with the bytes — fully dropped from the front (i.e. ACKed, for a TCP
// send buffer), cleared, or destroyed with the buffer. Until then the bytes
// must stay valid: retransmissions read them in place via CopyOut.

#ifndef SRC_TCPSTACK_BYTE_BUFFER_H_
#define SRC_TCPSTACK_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace netkernel::tcp {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  ByteBuffer(const ByteBuffer&) = delete;
  ByteBuffer& operator=(const ByteBuffer&) = delete;
  ~ByteBuffer() { Clear(); }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Append(const uint8_t* data, uint64_t n) {
    if (n == 0) return;
    Chunk c;
    c.owned.assign(data, data + n);
    chunks_.push_back(std::move(c));
    size_ += n;
  }

  void Append(std::vector<uint8_t> chunk) {
    if (chunk.empty()) return;
    size_ += chunk.size();
    Chunk c;
    c.owned = std::move(chunk);
    chunks_.push_back(std::move(c));
  }

  // Appends `n` bytes by reference (zero-copy). `on_free` fires exactly once,
  // when the range is fully consumed (dropped past), cleared, or the buffer
  // is destroyed; the bytes must remain valid until then.
  void AppendExternal(const uint8_t* data, uint64_t n, std::function<void()> on_free) {
    NK_CHECK(n > 0);
    Chunk c;
    c.ext = data;
    c.ext_len = n;
    c.on_free = std::move(on_free);
    chunks_.push_back(std::move(c));
    size_ += n;
  }

  // Copies `n` bytes starting `offset` bytes from the front into `out`.
  // Requires offset + n <= size().
  void CopyOut(uint64_t offset, uint64_t n, uint8_t* out) const {
    NK_CHECK(offset + n <= size_);
    uint64_t skip = head_offset_ + offset;
    size_t ci = 0;
    while (skip >= chunks_[ci].size()) {
      skip -= chunks_[ci].size();
      ++ci;
    }
    uint64_t copied = 0;
    while (copied < n) {
      const Chunk& c = chunks_[ci];
      uint64_t avail = c.size() - skip;
      uint64_t take = n - copied < avail ? n - copied : avail;
      std::memcpy(out + copied, c.data() + skip, take);
      copied += take;
      skip = 0;
      ++ci;
    }
  }

  // Removes `n` bytes from the front, firing free callbacks of external
  // chunks that are fully passed.
  void Drop(uint64_t n) {
    NK_CHECK(n <= size_);
    size_ -= n;
    head_offset_ += n;
    while (!chunks_.empty() && head_offset_ >= chunks_.front().size()) {
      head_offset_ -= chunks_.front().size();
      Chunk c = std::move(chunks_.front());
      chunks_.pop_front();
      c.Release();  // may run arbitrary code; chunk already detached
    }
  }

  // Reads (copies + removes) up to `max` bytes from the front. Returns count.
  uint64_t ReadInto(uint8_t* out, uint64_t max) {
    uint64_t n = max < size_ ? max : size_;
    if (n > 0) {
      CopyOut(0, n, out);
      Drop(n);
    }
    return n;
  }

  void Clear() {
    std::deque<Chunk> doomed;
    doomed.swap(chunks_);
    size_ = 0;
    head_offset_ = 0;
    for (Chunk& c : doomed) c.Release();
  }

 private:
  struct Chunk {
    std::vector<uint8_t> owned;
    const uint8_t* ext = nullptr;  // external range (owned is empty then)
    uint64_t ext_len = 0;
    std::function<void()> on_free;

    Chunk() = default;
    Chunk(Chunk&& o) noexcept
        : owned(std::move(o.owned)),
          ext(std::exchange(o.ext, nullptr)),
          ext_len(std::exchange(o.ext_len, 0)),
          on_free(std::exchange(o.on_free, nullptr)) {}
    Chunk& operator=(Chunk&& o) noexcept {
      if (this != &o) {
        Release();
        owned = std::move(o.owned);
        ext = std::exchange(o.ext, nullptr);
        ext_len = std::exchange(o.ext_len, 0);
        on_free = std::exchange(o.on_free, nullptr);
      }
      return *this;
    }
    Chunk(const Chunk&) = delete;
    Chunk& operator=(const Chunk&) = delete;
    ~Chunk() { Release(); }

    void Release() {
      if (on_free) std::exchange(on_free, nullptr)();
    }
    const uint8_t* data() const { return ext != nullptr ? ext : owned.data(); }
    uint64_t size() const { return ext != nullptr ? ext_len : owned.size(); }
  };

  std::deque<Chunk> chunks_;
  uint64_t size_ = 0;
  uint64_t head_offset_ = 0;  // bytes of chunks_.front() already consumed
};

}  // namespace netkernel::tcp

#endif  // SRC_TCPSTACK_BYTE_BUFFER_H_
