// Copyright (c) NetKernel reproduction authors.
// Chunked byte FIFO used for socket send/receive buffers. Supports random
// access reads relative to the front (needed for TCP retransmission) and
// amortized O(1) append/drop.

#ifndef SRC_TCPSTACK_BYTE_BUFFER_H_
#define SRC_TCPSTACK_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <vector>

#include "src/common/check.h"

namespace netkernel::tcp {

class ByteBuffer {
 public:
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Append(const uint8_t* data, uint64_t n) {
    if (n == 0) return;
    chunks_.emplace_back(data, data + n);
    size_ += n;
  }

  void Append(std::vector<uint8_t> chunk) {
    if (chunk.empty()) return;
    size_ += chunk.size();
    chunks_.push_back(std::move(chunk));
  }

  // Copies `n` bytes starting `offset` bytes from the front into `out`.
  // Requires offset + n <= size().
  void CopyOut(uint64_t offset, uint64_t n, uint8_t* out) const {
    NK_CHECK(offset + n <= size_);
    uint64_t skip = head_offset_ + offset;
    size_t ci = 0;
    while (skip >= chunks_[ci].size()) {
      skip -= chunks_[ci].size();
      ++ci;
    }
    uint64_t copied = 0;
    while (copied < n) {
      const auto& c = chunks_[ci];
      uint64_t avail = c.size() - skip;
      uint64_t take = n - copied < avail ? n - copied : avail;
      std::memcpy(out + copied, c.data() + skip, take);
      copied += take;
      skip = 0;
      ++ci;
    }
  }

  // Removes `n` bytes from the front.
  void Drop(uint64_t n) {
    NK_CHECK(n <= size_);
    size_ -= n;
    head_offset_ += n;
    while (!chunks_.empty() && head_offset_ >= chunks_.front().size()) {
      head_offset_ -= chunks_.front().size();
      chunks_.pop_front();
    }
  }

  // Reads (copies + removes) up to `max` bytes from the front. Returns count.
  uint64_t ReadInto(uint8_t* out, uint64_t max) {
    uint64_t n = max < size_ ? max : size_;
    if (n > 0) {
      CopyOut(0, n, out);
      Drop(n);
    }
    return n;
  }

  void Clear() {
    chunks_.clear();
    size_ = 0;
    head_offset_ = 0;
  }

 private:
  std::deque<std::vector<uint8_t>> chunks_;
  uint64_t size_ = 0;
  uint64_t head_offset_ = 0;  // bytes of chunks_.front() already consumed
};

}  // namespace netkernel::tcp

#endif  // SRC_TCPSTACK_BYTE_BUFFER_H_
