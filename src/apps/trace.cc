// Copyright (c) NetKernel reproduction authors.

#include "src/apps/trace.h"

#include <algorithm>
#include <cmath>

namespace netkernel::apps {

AgTrace AgTrace::Generate(uint64_t seed, const AgTraceParams& p) {
  Rng rng(seed);
  AgTrace trace;
  trace.rps_.reserve(static_cast<size_t>(p.minutes));
  // AR(1) in log space: x_{t+1} = mu + ar1*(x_t - mu) + e, e ~ N(0, s_e),
  // with s_e chosen so the stationary stddev equals log_sigma.
  double innovation_sigma = p.log_sigma * std::sqrt(1.0 - p.ar1 * p.ar1);
  double x = p.log_mean + p.log_sigma * rng.NextGaussian();
  for (int t = 0; t < p.minutes; ++t) {
    double rps = std::exp(x);
    if (rng.NextBool(p.spike_prob)) {
      double mult = p.spike_mult_min +
                    rng.NextDouble() * (p.spike_mult_max - p.spike_mult_min);
      rps *= mult;
    }
    trace.rps_.push_back(std::min(rps, p.cap));
    x = p.log_mean + p.ar1 * (x - p.log_mean) + innovation_sigma * rng.NextGaussian();
  }
  return trace;
}

double AgTrace::Peak() const {
  double peak = 0;
  for (double v : rps_) peak = std::max(peak, v);
  return peak;
}

double AgTrace::Mean() const {
  if (rps_.empty()) return 0;
  double sum = 0;
  for (double v : rps_) sum += v;
  return sum / static_cast<double>(rps_.size());
}

double AgTrace::FractionBelow(double frac) const {
  if (rps_.empty()) return 0;
  double threshold = frac * Peak();
  size_t below = 0;
  for (double v : rps_) {
    if (v <= threshold) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(rps_.size());
}

std::vector<AgTrace> GenerateAgFleet(int count, uint64_t seed, const AgTraceParams& params) {
  std::vector<AgTrace> fleet;
  fleet.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    fleet.push_back(AgTrace::Generate(seed + static_cast<uint64_t>(i) * 7919, params));
  }
  return fleet;
}

}  // namespace netkernel::apps
