// Copyright (c) NetKernel reproduction authors.
// Guest workloads used across the evaluation, written against SocketApi so
// they run unmodified on Baseline and NetKernel VMs (and on kernel or mTCP
// NSMs — the paper's "deploy mTCP without API change" story, §6.3):
//   * EpollServer  — the multi-threaded epoll short-response server of
//                    §7.3/§7.4 (also stands in for nginx with app cycles).
//   * LoadGen      — ab-style closed-loop client with a concurrency level,
//                    total request count, and latency percentiles (§7.7), or
//                    open-loop Poisson arrivals at a target rate.
//   * StreamSender/StreamSink — iperf-style bulk TCP streams (§7.3-§7.5).
//   * UdpKvServer/UdpLoadGen  — memcached-style UDP key-value request/response
//                    workload over the SOCK_DGRAM surface: the same app binary
//                    logic runs on a Baseline VM and a NetKernel VM, which is
//                    the datagram leg of the API-transparency story.

#ifndef SRC_APPS_WORKLOADS_H_
#define SRC_APPS_WORKLOADS_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/host.h"
#include "src/core/socket_api.h"

namespace netkernel::apps {

// ---------------------------------------------------------------------------
// Epoll server
// ---------------------------------------------------------------------------

struct EpollServerConfig {
  uint16_t port = 8080;
  uint32_t request_size = 64;
  uint32_t response_size = 64;
  bool keepalive = false;
  int threads = 0;       // 0 = one per vCPU
  int first_thread = 0;  // vCPU index of the first server thread
  // Application-logic cycles per request (0 = pure echo; nonzero models an
  // nginx/application-gateway request handler).
  Cycles app_cycles_per_request = 0;
  int max_events = 64;
};

struct ServerStats {
  uint64_t requests = 0;
  uint64_t accepted = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  // Per-interval requests for time-series figures (optional).
  TimeSeries* rps_series = nullptr;
};

// Spawns the server tasks (they run for the remainder of the simulation).
void StartEpollServer(core::Vm* vm, EpollServerConfig config, ServerStats* stats);

// ---------------------------------------------------------------------------
// Load generator (ab-style)
// ---------------------------------------------------------------------------

struct LoadGenConfig {
  netsim::IpAddr server_ip = 0;
  uint16_t port = 8080;
  int concurrency = 100;
  uint64_t total_requests = 100000;  // 0 = unbounded (run for sim horizon)
  uint32_t request_size = 64;
  uint32_t response_size = 64;
  int threads = 0;         // 0 = one per vCPU
  double open_loop_rps = 0;  // >0: Poisson arrivals at this rate instead of
                             // closed-loop slots
  uint64_t seed = 42;
};

struct LoadGenStats {
  Summary latency_us;  // request-response latency in microseconds
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  SimTime first_issue = -1;
  SimTime last_complete = 0;
  bool done = false;
  TimeSeries* rps_series = nullptr;

  double RequestsPerSec() const {
    SimTime span = last_complete - first_issue;
    return span > 0 ? static_cast<double>(completed) / ToSeconds(span) : 0.0;
  }
};

void StartLoadGen(core::Vm* vm, LoadGenConfig config, LoadGenStats* stats);

// Issues exactly one request (connect/request/response/close) from `core`,
// recording latency/errors into `stats`. Used by trace replayers that manage
// their own arrival process.
void IssueOneRequest(core::Vm* vm, sim::CpuCore* core, const LoadGenConfig& config,
                     LoadGenStats* stats);

// ---------------------------------------------------------------------------
// Bulk streams (iperf-style)
// ---------------------------------------------------------------------------

struct StreamConfig {
  netsim::IpAddr dst_ip = 0;
  uint16_t port = 9000;
  int connections = 1;
  uint32_t message_size = 8192;
  int threads = 0;  // 0 = one per vCPU; connections round-robin over threads
  uint64_t bytes_limit = 0;  // 0 = unbounded
  double paced_gbps = 0;     // >0: pace the aggregate offered load
  // Use the zero-copy loaning datapath (AcquireTxBuf/SendBuf) instead of
  // Send: the app fills loaned buffers in place, eliminating the
  // userspace->hugepage copy, and the NSM stack transmits from the chunk
  // (Table 6's zerocopy ablation, made real).
  bool zerocopy = false;
};

struct StreamStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages = 0;
  TimeSeries* goodput_series = nullptr;  // bytes binned by arrival time
  // Per-connection receive counters (Fig 9 fairness accounting).
  std::vector<uint64_t> per_conn_bytes;
};

// Sink: accepts connections on `port` and drains them forever. With
// `zerocopy` the sink drains through RecvBuf/ReleaseBuf loans (no
// hugepage->app copy) instead of Recv.
void StartStreamSink(core::Vm* vm, uint16_t port, StreamStats* stats, int threads = 0,
                     int first_thread = 0, bool zerocopy = false);

// Senders: open `connections` streams to the sink and send continuously.
void StartStreamSenders(core::Vm* vm, StreamConfig config, StreamStats* stats);

// ---------------------------------------------------------------------------
// Memcached-style UDP key-value workload
// ---------------------------------------------------------------------------
//
// Wire protocol (one request or response per datagram):
//   request:  1 B op (0 = GET, 1 = SET) | 8 B request id | 8 B key | value...
//   response: 1 B status (0 = hit/stored, 1 = miss) | 8 B request id | value...
// The request id lets an open-loop client match out-of-order responses; the
// per-thread server port mirrors memcached's UDP worker model.

constexpr uint32_t kUdpKvHeader = 17;

struct UdpKvServerConfig {
  uint16_t port = 11211;
  // Worker threads; thread t serves its own socket on `port + t` (memcached's
  // per-worker UDP port scheme). 0 = one per vCPU.
  int threads = 1;
  int first_thread = 0;  // vCPU index of the first server thread
  Cycles app_cycles_per_request = 0;  // hash-table/app logic per request
  // Serve over the zero-copy datagram surface: requests arrive as
  // RecvFromBuf loans, responses are filled in place and sent with
  // SendToBuf. The identical flag works on Baseline and NetKernel VMs.
  bool zerocopy = false;
};

struct UdpKvStats {
  uint64_t requests = 0;
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  TimeSeries* rps_series = nullptr;
};

// Spawns the server threads (they run for the remainder of the simulation).
void StartUdpKvServer(core::Vm* vm, UdpKvServerConfig config, UdpKvStats* stats);

struct UdpLoadGenConfig {
  netsim::IpAddr server_ip = 0;
  uint16_t port = 11211;
  int ports = 1;             // server worker ports: [port, port + ports)
  double rps = 10000;        // open-loop Poisson arrival rate (aggregate)
  uint64_t total_requests = 0;  // 0 = unbounded (run for sim horizon)
  uint32_t value_size = 100;
  double set_fraction = 0.1;  // SETs vs GETs
  uint64_t key_space = 10000;
  int threads = 0;  // client threads, each with its own socket; 0 = one/vCPU
  uint64_t seed = 42;
  // Latency percentiles only sample requests issued at or after this instant,
  // so a warmup phase does not skew the steady-state distribution.
  SimTime measure_from = 0;
  // Issue requests and drain responses over the zero-copy datagram surface
  // (AcquireTxBuf/SendToBuf + RecvFromBuf/ReleaseBuf).
  bool zerocopy = false;
};

struct UdpLoadGenStats {
  Summary latency_us;  // request-response latency in microseconds
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t errors = 0;
  SimTime first_issue = -1;
  SimTime last_complete = 0;
  bool done = false;  // all requests issued (responses may still be in flight)

  // Requests with no response yet: with UDP these are the losses.
  uint64_t Lost() const { return issued - completed - errors; }
  double LossRate() const {
    return issued > 0 ? static_cast<double>(Lost()) / static_cast<double>(issued) : 0.0;
  }
  double RequestsPerSec() const {
    SimTime span = last_complete - first_issue;
    return span > 0 ? static_cast<double>(completed) / ToSeconds(span) : 0.0;
  }
};

void StartUdpLoadGen(core::Vm* vm, UdpLoadGenConfig config, UdpLoadGenStats* stats);

}  // namespace netkernel::apps

#endif  // SRC_APPS_WORKLOADS_H_
