// Copyright (c) NetKernel reproduction authors.
// Synthetic application-gateway (AG) traffic traces.
//
// The paper's multiplexing use case (§6.1, Figures 7-8, Table 2) relies on a
// proprietary trace of tens of thousands of AGs from a large cloud
// (September 2018) whose salient property is burstiness: average utilization
// is very low while short peaks dominate provisioning. We reproduce that
// property with a seeded generator: per-minute normalized RPS follows a
// mean-reverting AR(1) process in log space with occasional multiplicative
// spikes, giving peak-to-mean ratios in the 5-20x range reported for such
// gateway fleets.

#ifndef SRC_APPS_TRACE_H_
#define SRC_APPS_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace netkernel::apps {

struct AgTraceParams {
  int minutes = 60;
  double log_mean = 2.2;     // mean of log(normalized rps)
  double log_sigma = 0.55;   // stddev of the AR(1) stationary distribution
  double ar1 = 0.75;         // minute-to-minute correlation
  double spike_prob = 0.04;  // probability of a burst in a given minute
  double spike_mult_min = 3.0;
  double spike_mult_max = 8.0;
  double cap = 120.0;  // normalized RPS cap (Fig 7 y-axis range)
};

class AgTrace {
 public:
  // Generates one AG's normalized per-minute RPS series.
  static AgTrace Generate(uint64_t seed, const AgTraceParams& params = {});

  const std::vector<double>& rps() const { return rps_; }
  double Peak() const;
  double Mean() const;
  // Fraction of minutes during which rps <= frac * Peak().
  double FractionBelow(double frac) const;

 private:
  std::vector<double> rps_;
};

// A fleet of AG traces (Table 2 packs a whole machine's worth).
std::vector<AgTrace> GenerateAgFleet(int count, uint64_t seed,
                                     const AgTraceParams& params = {});

}  // namespace netkernel::apps

#endif  // SRC_APPS_TRACE_H_
