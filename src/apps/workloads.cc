// Copyright (c) NetKernel reproduction authors.

#include "src/apps/workloads.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/common/check.h"
#include "src/sim/task.h"

namespace netkernel::apps {

using core::kEpollErr;
using core::kEpollHup;
using core::kEpollIn;
using core::SocketApi;

namespace {

int ResolveThreads(core::Vm* vm, int threads) {
  return threads > 0 ? threads : vm->num_vcpus();
}

sim::Task<void> ServerThread(core::Vm* vm, int thread_idx, EpollServerConfig cfg,
                             ServerStats* stats) {
  SocketApi& api = vm->api();
  sim::CpuCore* core = vm->vcpu(thread_idx % vm->num_vcpus());
  sim::EventLoop* loop = api.loop();

  int lfd = co_await api.Socket(core);
  NK_CHECK(lfd >= 0);
  int r = co_await api.Bind(core, lfd, 0, cfg.port);
  NK_CHECK(r == 0);
  r = co_await api.Listen(core, lfd, 1024, /*reuseport=*/true);
  NK_CHECK(r == 0);

  int ep = api.EpollCreate();
  api.EpollCtl(ep, lfd, kEpollIn);

  struct ConnState {
    uint32_t recvd = 0;
  };
  std::unordered_map<int, ConnState> conns;
  std::vector<uint8_t> rbuf(std::max<uint32_t>(cfg.request_size, 16 * 1024));
  std::vector<uint8_t> resp(cfg.response_size, 0x5a);

  for (;;) {
    auto evs = co_await api.EpollWait(core, ep, static_cast<size_t>(cfg.max_events),
                                      50 * kMillisecond);
    for (const core::EpollEvent& ev : evs) {
      if (ev.fd == lfd) {
        int cfd = co_await api.Accept(core, lfd);
        if (cfd >= 0) {
          api.EpollCtl(ep, cfd, kEpollIn);
          conns[cfd] = ConnState{};
          ++stats->accepted;
        }
        continue;
      }
      auto it = conns.find(ev.fd);
      if (it == conns.end()) continue;
      if ((ev.events & (kEpollErr | kEpollHup)) != 0 && (ev.events & kEpollIn) == 0) {
        co_await api.Close(core, ev.fd);
        conns.erase(ev.fd);
        continue;
      }
      int64_t n = co_await api.Recv(core, ev.fd, rbuf.data(),
                                    cfg.request_size - it->second.recvd);
      if (n <= 0) {
        co_await api.Close(core, ev.fd);
        conns.erase(ev.fd);
        continue;
      }
      stats->bytes_in += static_cast<uint64_t>(n);
      it->second.recvd += static_cast<uint32_t>(n);
      if (it->second.recvd < cfg.request_size) continue;
      it->second.recvd = 0;

      if (cfg.app_cycles_per_request > 0) {
        co_await core->Work(cfg.app_cycles_per_request);  // application logic
      }
      int64_t sent = co_await api.Send(core, ev.fd, resp.data(), resp.size());
      if (sent > 0) stats->bytes_out += static_cast<uint64_t>(sent);
      ++stats->requests;
      if (stats->rps_series != nullptr) stats->rps_series->Add(loop->Now(), 1.0);
      if (!cfg.keepalive) {
        co_await api.Close(core, ev.fd);
        conns.erase(ev.fd);
      }
    }
  }
}

struct LoadGenShared {
  LoadGenConfig cfg;
  LoadGenStats* stats;
  int active_slots = 0;
};

sim::Task<void> OneRequest(core::Vm* vm, sim::CpuCore* core,
                           std::shared_ptr<LoadGenShared> sh) {
  SocketApi& api = vm->api();
  sim::EventLoop* loop = api.loop();
  LoadGenStats* stats = sh->stats;
  const LoadGenConfig& cfg = sh->cfg;

  std::vector<uint8_t> req(cfg.request_size, 0xa5);
  std::vector<uint8_t> buf(std::max<uint32_t>(cfg.response_size, 4096));

  SimTime t0 = loop->Now();
  if (stats->first_issue < 0) stats->first_issue = t0;
  int fd = co_await api.Socket(core);
  if (fd < 0) {
    ++stats->errors;
    co_return;
  }
  int r = co_await api.Connect(core, fd, cfg.server_ip, cfg.port);
  if (r != 0) {
    ++stats->errors;
    co_await api.Close(core, fd);
    co_return;
  }
  int64_t sent = co_await api.Send(core, fd, req.data(), req.size());
  if (sent < static_cast<int64_t>(req.size())) {
    ++stats->errors;
    co_await api.Close(core, fd);
    co_return;
  }
  uint64_t got = 0;
  while (got < cfg.response_size) {
    int64_t n = co_await api.Recv(core, fd, buf.data(), buf.size());
    if (n <= 0) break;
    got += static_cast<uint64_t>(n);
  }
  co_await api.Close(core, fd);
  if (got >= cfg.response_size) {
    ++stats->completed;
    stats->last_complete = loop->Now();
    stats->latency_us.Add(static_cast<double>(loop->Now() - t0) / kMicrosecond);
    if (stats->rps_series != nullptr) stats->rps_series->Add(loop->Now(), 1.0);
  } else {
    ++stats->errors;
  }
}

sim::Task<void> ClosedLoopSlot(core::Vm* vm, sim::CpuCore* core,
                               std::shared_ptr<LoadGenShared> sh) {
  LoadGenStats* stats = sh->stats;
  for (;;) {
    if (sh->cfg.total_requests > 0 && stats->issued >= sh->cfg.total_requests) break;
    ++stats->issued;
    co_await OneRequest(vm, core, sh);
  }
  if (--sh->active_slots == 0) stats->done = true;
}

sim::Task<void> OpenLoopArrivals(core::Vm* vm, std::shared_ptr<LoadGenShared> sh) {
  SocketApi& api = vm->api();
  sim::EventLoop* loop = api.loop();
  Rng rng(sh->cfg.seed);
  int threads = ResolveThreads(vm, sh->cfg.threads);
  uint64_t i = 0;
  for (;;) {
    if (sh->cfg.total_requests > 0 && sh->stats->issued >= sh->cfg.total_requests) break;
    double gap_s = rng.NextExponential(1.0 / sh->cfg.open_loop_rps);
    co_await sim::Delay(loop, FromSeconds(gap_s));
    // Bound outstanding requests (SYN backlog protection).
    if (sh->stats->issued - sh->stats->completed - sh->stats->errors > 65536) continue;
    ++sh->stats->issued;
    sim::CpuCore* core = vm->vcpu(static_cast<int>(i++ % threads) % vm->num_vcpus());
    sim::Spawn(OneRequest(vm, core, sh));
  }
  sh->stats->done = true;
}

sim::Task<void> StreamSinkThread(core::Vm* vm, int thread_idx, uint16_t port,
                                 StreamStats* stats, bool zerocopy) {
  SocketApi& api = vm->api();
  sim::CpuCore* core = vm->vcpu(thread_idx % vm->num_vcpus());
  sim::EventLoop* loop = api.loop();

  int lfd = co_await api.Socket(core);
  NK_CHECK(lfd >= 0);
  NK_CHECK(0 == co_await api.Bind(core, lfd, 0, port));
  NK_CHECK(0 == co_await api.Listen(core, lfd, 256, true));
  int ep = api.EpollCreate();
  api.EpollCtl(ep, lfd, kEpollIn);

  std::unordered_map<int, size_t> conn_index;
  std::vector<uint8_t> buf(64 * 1024);

  for (;;) {
    auto evs = co_await api.EpollWait(core, ep, 64, 50 * kMillisecond);
    for (const core::EpollEvent& ev : evs) {
      if (ev.fd == lfd) {
        int cfd = co_await api.Accept(core, lfd);
        if (cfd >= 0) {
          api.EpollCtl(ep, cfd, kEpollIn);
          conn_index[cfd] = stats->per_conn_bytes.size();
          stats->per_conn_bytes.push_back(0);
        }
        continue;
      }
      auto it = conn_index.find(ev.fd);
      if (it == conn_index.end()) continue;
      int64_t n;
      if (zerocopy) {
        // Drain through a loan: the chunk never gets copied into an app
        // buffer; releasing it rings the receive-credit channel.
        core::NkBuf loan;
        n = co_await api.RecvBuf(core, ev.fd, &loan);
        if (n > 0) co_await api.ReleaseBuf(core, ev.fd, loan);
      } else {
        n = co_await api.Recv(core, ev.fd, buf.data(), buf.size());
      }
      if (n <= 0) {
        co_await api.Close(core, ev.fd);
        conn_index.erase(ev.fd);
        continue;
      }
      stats->bytes_received += static_cast<uint64_t>(n);
      stats->per_conn_bytes[it->second] += static_cast<uint64_t>(n);
      if (stats->goodput_series != nullptr) {
        stats->goodput_series->Add(loop->Now(), static_cast<double>(n));
      }
    }
  }
}

sim::Task<void> StreamSenderConn(core::Vm* vm, sim::CpuCore* core, StreamConfig cfg,
                                 StreamStats* stats) {
  SocketApi& api = vm->api();
  sim::EventLoop* loop = api.loop();
  int fd = co_await api.Socket(core);
  if (fd < 0) co_return;
  if (0 != co_await api.Connect(core, fd, cfg.dst_ip, cfg.port)) co_return;

  std::vector<uint8_t> msg(cfg.message_size, 0xc3);
  double per_conn_gbps = cfg.paced_gbps > 0 ? cfg.paced_gbps / cfg.connections : 0;
  for (;;) {
    if (cfg.bytes_limit > 0 && stats->bytes_sent >= cfg.bytes_limit) break;
    int64_t n;
    if (cfg.zerocopy) {
      // Fill the loaned buffer in place — the message is generated straight
      // into the registered region, so no userspace->hugepage copy happens.
      core::NkBuf loan;
      int r = co_await api.AcquireTxBuf(core, fd, cfg.message_size, &loan);
      if (r != 0) break;
      loan.size = std::min(loan.capacity, cfg.message_size);
      std::memset(loan.data, 0xc3, loan.size);
      n = co_await api.SendBuf(core, fd, loan);
    } else {
      n = co_await api.Send(core, fd, msg.data(), msg.size());
    }
    if (n <= 0) break;
    stats->bytes_sent += static_cast<uint64_t>(n);
    ++stats->messages;
    if (per_conn_gbps > 0) {
      SimTime gap = static_cast<SimTime>(static_cast<double>(n) * 8.0 /
                                         (per_conn_gbps * 1e9) * kSecond);
      co_await sim::Delay(loop, gap);
    }
  }
  co_await api.Close(core, fd);
}

// ---------------------------------------------------------------------------
// Memcached-style UDP key-value workload
// ---------------------------------------------------------------------------

void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

sim::Task<void> UdpKvServerThread(core::Vm* vm, int thread_idx, uint16_t port,
                                  UdpKvServerConfig cfg, UdpKvStats* stats) {
  SocketApi& api = vm->api();
  sim::CpuCore* core = vm->vcpu(thread_idx % vm->num_vcpus());
  sim::EventLoop* loop = api.loop();

  int fd = co_await api.SocketDgram(core);
  NK_CHECK(fd >= 0);
  int r = co_await api.Bind(core, fd, 0, port);
  NK_CHECK(r == 0);

  // Per-thread shard, as each memcached UDP worker owns its own port.
  std::unordered_map<uint64_t, std::vector<uint8_t>> store;
  std::vector<uint8_t> req(64 * 1024);
  std::vector<uint8_t> resp(64 * 1024);

  for (;;) {
    netsim::IpAddr src_ip = 0;
    uint16_t src_port = 0;
    int64_t n;
    core::NkBuf req_loan;
    const uint8_t* req_data;
    if (cfg.zerocopy) {
      // Request arrives as a loaned chunk: parse it in place.
      n = co_await api.RecvFromBuf(core, fd, &req_loan, &src_ip, &src_port);
      req_data = req_loan.data;
    } else {
      n = co_await api.RecvFrom(core, fd, req.data(), req.size(), &src_ip, &src_port);
      req_data = req.data();
    }
    if (n < static_cast<int64_t>(kUdpKvHeader)) {  // malformed
      if (cfg.zerocopy && n >= 0) co_await api.ReleaseBuf(core, fd, req_loan);
      continue;
    }
    stats->bytes_in += static_cast<uint64_t>(n);
    uint8_t op = req_data[0];
    uint64_t req_id = GetU64(req_data + 1);
    uint64_t key = GetU64(req_data + 9);

    if (cfg.app_cycles_per_request > 0) {
      co_await core->Work(cfg.app_cycles_per_request);
    }

    uint64_t resp_len = 9;
    uint8_t status = 0;
    const std::vector<uint8_t>* value = nullptr;
    if (op == 1) {  // SET
      store[key].assign(req_data + kUdpKvHeader, req_data + n);
      ++stats->sets;
    } else {  // GET
      auto it = store.find(key);
      if (it == store.end()) {
        status = 1;
        ++stats->misses;
      } else {
        value = &it->second;
        resp_len += it->second.size();
        ++stats->hits;
      }
      ++stats->gets;
    }
    if (cfg.zerocopy) co_await api.ReleaseBuf(core, fd, req_loan);

    int64_t sent = -1;
    if (cfg.zerocopy) {
      // Build the response straight into a loaned chunk and transfer it. An
      // acquire failure (pool pressure) drops the response like any UDP
      // loss, but the request still counts — same contract as the copy path.
      core::NkBuf resp_loan;
      int r = co_await api.AcquireTxBuf(core, fd, static_cast<uint32_t>(resp_len), &resp_loan);
      if (r == 0) {
        resp_loan.size =
            static_cast<uint32_t>(std::min<uint64_t>(resp_len, resp_loan.capacity));
        resp_loan.data[0] = status;
        PutU64(resp_loan.data + 1, req_id);
        if (value != nullptr && resp_loan.size >= 9 + value->size()) {
          std::copy(value->begin(), value->end(), resp_loan.data + 9);
        }
        sent = co_await api.SendToBuf(core, fd, src_ip, src_port, resp_loan);
      }
    } else {
      resp[0] = status;
      PutU64(resp.data() + 1, req_id);
      if (value != nullptr) std::copy(value->begin(), value->end(), resp.begin() + 9);
      sent = co_await api.SendTo(core, fd, src_ip, src_port, resp.data(), resp_len);
    }
    if (sent > 0) stats->bytes_out += static_cast<uint64_t>(sent);
    ++stats->requests;
    if (stats->rps_series != nullptr) stats->rps_series->Add(loop->Now(), 1.0);
  }
}

struct UdpLoadGenShared {
  UdpLoadGenConfig cfg;
  UdpLoadGenStats* stats;
  uint64_t next_req_id = 1;
  int senders_done = 0;
  int threads = 0;
};

struct OutstandingReq {
  SimTime issued_at = 0;
  bool is_set = false;
};

// Receives responses on this thread's socket and matches them to issue times.
sim::Task<void> UdpLoadGenReceiver(
    core::Vm* vm, sim::CpuCore* core, int fd, std::shared_ptr<UdpLoadGenShared> sh,
    std::shared_ptr<std::unordered_map<uint64_t, OutstandingReq>> out) {
  SocketApi& api = vm->api();
  sim::EventLoop* loop = api.loop();
  std::vector<uint8_t> buf(64 * 1024);
  for (;;) {
    int64_t n;
    uint8_t status = 0;
    uint64_t req_id = 0;
    if (sh->cfg.zerocopy) {
      core::NkBuf loan;
      n = co_await api.RecvFromBuf(core, fd, &loan, nullptr, nullptr);
      if (n >= 9) {
        status = loan.data[0];
        req_id = GetU64(loan.data + 1);
      }
      if (n >= 0) co_await api.ReleaseBuf(core, fd, loan);
      if (n < 9) continue;
    } else {
      n = co_await api.RecvFrom(core, fd, buf.data(), buf.size(), nullptr, nullptr);
      if (n < 9) continue;
      status = buf[0];
      req_id = GetU64(buf.data() + 1);
    }
    auto it = out->find(req_id);
    if (it == out->end()) continue;  // duplicate or late beyond accounting
    UdpLoadGenStats* stats = sh->stats;
    ++stats->completed;
    // Hit/miss is a GET-only notion; a SET ack's status 0 means "stored".
    if (!it->second.is_set) {
      if (status == 0) {
        ++stats->hits;
      } else {
        ++stats->misses;
      }
    }
    stats->last_complete = loop->Now();
    if (it->second.issued_at >= sh->cfg.measure_from) {
      stats->latency_us.Add(static_cast<double>(loop->Now() - it->second.issued_at) /
                            kMicrosecond);
    }
    out->erase(it);
  }
}

sim::Task<void> UdpLoadGenSender(core::Vm* vm, sim::CpuCore* core, int thread_idx,
                                 std::shared_ptr<UdpLoadGenShared> sh) {
  SocketApi& api = vm->api();
  sim::EventLoop* loop = api.loop();
  const UdpLoadGenConfig& cfg = sh->cfg;
  UdpLoadGenStats* stats = sh->stats;
  Rng rng(cfg.seed + static_cast<uint64_t>(thread_idx) * 7919);

  int fd = co_await api.SocketDgram(core);
  NK_CHECK(fd >= 0);
  auto outstanding = std::make_shared<std::unordered_map<uint64_t, OutstandingReq>>();
  sim::Spawn(UdpLoadGenReceiver(vm, core, fd, sh, outstanding));

  std::vector<uint8_t> req(kUdpKvHeader + cfg.value_size, 0x6b);
  const double per_thread_rps = cfg.rps / sh->threads;
  for (;;) {
    if (cfg.total_requests > 0 && stats->issued >= cfg.total_requests) break;
    double gap_s = rng.NextExponential(1.0 / per_thread_rps);
    co_await sim::Delay(loop, FromSeconds(gap_s));
    if (cfg.total_requests > 0 && stats->issued >= cfg.total_requests) break;

    bool is_set = rng.NextBool(cfg.set_fraction);
    uint64_t key = rng.NextBounded(cfg.key_space);
    uint64_t req_id = sh->next_req_id++;
    uint64_t len = is_set ? kUdpKvHeader + cfg.value_size : kUdpKvHeader;
    uint16_t port = static_cast<uint16_t>(
        cfg.port + (cfg.ports > 1 ? key % static_cast<uint64_t>(cfg.ports) : 0));

    ++stats->issued;
    if (stats->first_issue < 0) stats->first_issue = loop->Now();
    (*outstanding)[req_id] = OutstandingReq{loop->Now(), is_set};
    int64_t sent;
    if (cfg.zerocopy) {
      // Fill the request straight into a loaned chunk: no user->hugepage copy.
      core::NkBuf loan;
      int r = co_await api.AcquireTxBuf(core, fd, static_cast<uint32_t>(len), &loan);
      if (r != 0) {
        sent = r;
      } else {
        loan.size = static_cast<uint32_t>(std::min<uint64_t>(len, loan.capacity));
        loan.data[0] = is_set ? 1 : 0;
        PutU64(loan.data + 1, req_id);
        PutU64(loan.data + 9, key);
        // Only a SET carries a value; fill just that region (the copy path
        // likewise reuses its preinitialized request buffer).
        if (loan.size > kUdpKvHeader) {
          std::memset(loan.data + kUdpKvHeader, 0x6b, loan.size - kUdpKvHeader);
        }
        sent = co_await api.SendToBuf(core, fd, cfg.server_ip, port, loan);
      }
    } else {
      req[0] = is_set ? 1 : 0;
      PutU64(req.data() + 1, req_id);
      PutU64(req.data() + 9, key);
      sent = co_await api.SendTo(core, fd, cfg.server_ip, port, req.data(), len);
    }
    if (sent < 0) {
      ++stats->errors;
      outstanding->erase(req_id);
    }
  }
  if (++sh->senders_done == sh->threads) stats->done = true;
}

}  // namespace

void StartEpollServer(core::Vm* vm, EpollServerConfig config, ServerStats* stats) {
  int threads = ResolveThreads(vm, config.threads);
  for (int t = 0; t < threads; ++t) {
    sim::Spawn(ServerThread(vm, config.first_thread + t, config, stats));
  }
}

void IssueOneRequest(core::Vm* vm, sim::CpuCore* core, const LoadGenConfig& config,
                     LoadGenStats* stats) {
  auto sh = std::make_shared<LoadGenShared>();
  sh->cfg = config;
  sh->stats = stats;
  ++stats->issued;
  sim::Spawn(OneRequest(vm, core, sh));
}

void StartLoadGen(core::Vm* vm, LoadGenConfig config, LoadGenStats* stats) {
  auto sh = std::make_shared<LoadGenShared>();
  sh->cfg = config;
  sh->stats = stats;
  if (config.open_loop_rps > 0) {
    sim::Spawn(OpenLoopArrivals(vm, sh));
    return;
  }
  int threads = ResolveThreads(vm, config.threads);
  sh->active_slots = config.concurrency;
  for (int c = 0; c < config.concurrency; ++c) {
    sim::CpuCore* core = vm->vcpu((c % threads) % vm->num_vcpus());
    sim::Spawn(ClosedLoopSlot(vm, core, sh));
  }
}

void StartStreamSink(core::Vm* vm, uint16_t port, StreamStats* stats, int threads,
                     int first_thread, bool zerocopy) {
  int n = ResolveThreads(vm, threads);
  for (int t = 0; t < n; ++t) {
    sim::Spawn(StreamSinkThread(vm, first_thread + t, port, stats, zerocopy));
  }
}

void StartStreamSenders(core::Vm* vm, StreamConfig config, StreamStats* stats) {
  int threads = ResolveThreads(vm, config.threads);
  for (int c = 0; c < config.connections; ++c) {
    sim::CpuCore* core = vm->vcpu((c % threads) % vm->num_vcpus());
    sim::Spawn(StreamSenderConn(vm, core, config, stats));
  }
}

void StartUdpKvServer(core::Vm* vm, UdpKvServerConfig config, UdpKvStats* stats) {
  int threads = ResolveThreads(vm, config.threads);
  for (int t = 0; t < threads; ++t) {
    uint16_t port = static_cast<uint16_t>(config.port + t);
    sim::Spawn(UdpKvServerThread(vm, config.first_thread + t, port, config, stats));
  }
}

void StartUdpLoadGen(core::Vm* vm, UdpLoadGenConfig config, UdpLoadGenStats* stats) {
  auto sh = std::make_shared<UdpLoadGenShared>();
  sh->cfg = config;
  sh->stats = stats;
  sh->threads = ResolveThreads(vm, config.threads);
  for (int t = 0; t < sh->threads; ++t) {
    sim::CpuCore* core = vm->vcpu(t % vm->num_vcpus());
    sim::Spawn(UdpLoadGenSender(vm, core, t, sh));
  }
}

}  // namespace netkernel::apps
